"""Digest graphs: the structural + value-set summaries of sources.

The paper views all digests "as directed graphs (e.g., for a relational
database, there is one node per attribute, one edge per key-foreign key
constraint, etc.), and to each node we attach the representation of the
set of data values corresponding to it" (§2.2).

A :class:`SourceDigest` is the digest of one source; a
:class:`DigestCatalog` gathers the digests of every source of a mixed
instance plus the *cross-source join edges* discovered by probing value
sets against each other — those edges are what the keyword engine's
shortest join paths traverse to bridge sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.digest.valueset import ValueSetSummary
from repro.errors import DigestError


@dataclass(frozen=True)
class DigestNode:
    """One value position of a source digest.

    ``container`` identifies the record/entity the position belongs to
    (table name, document collection, RDF summary class), ``position`` the
    attribute / field path / property within that container.
    """

    source_uri: str
    container: str
    position: str
    kind: str  # "column" | "field" | "rdf-property" | "rdf-class"

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.source_uri, self.container, self.position)

    def label(self) -> str:
        """Short human-readable label."""
        return f"{self.container}.{self.position}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source_uri}::{self.container}.{self.position}"


@dataclass(frozen=True)
class DigestEdge:
    """A directed edge of a digest graph."""

    source: DigestNode
    target: DigestNode
    kind: str  # "same-container" | "foreign-key" | "reference" | "join-candidate"
    weight: float = 1.0


@dataclass
class SourceDigest:
    """The digest of one data source."""

    source_uri: str
    model: str
    nodes: list[DigestNode] = field(default_factory=list)
    edges: list[DigestEdge] = field(default_factory=list)
    value_sets: dict[tuple[str, str, str], ValueSetSummary] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_node(self, node: DigestNode, values: ValueSetSummary | None = None) -> DigestNode:
        """Register a node and (optionally) its value-set summary."""
        self.nodes.append(node)
        if values is not None:
            self.value_sets[node.key] = values
        return node

    def add_edge(self, source: DigestNode, target: DigestNode, kind: str,
                 weight: float = 1.0) -> DigestEdge:
        """Register an intra-source edge."""
        edge = DigestEdge(source=source, target=target, kind=kind, weight=weight)
        self.edges.append(edge)
        return edge

    def node(self, container: str, position: str) -> DigestNode:
        """Return the node for ``container.position``."""
        for candidate in self.nodes:
            if candidate.container == container and candidate.position == position:
                return candidate
        raise DigestError(
            f"digest of {self.source_uri!r} has no node {container}.{position}"
        )

    def values_of(self, node: DigestNode) -> ValueSetSummary | None:
        """Return the value-set summary attached to ``node`` (if any)."""
        return self.value_sets.get(node.key)

    def lookup_keyword(self, keyword: str) -> list[DigestNode]:
        """Nodes whose value set or whose name matches ``keyword``."""
        matches = []
        needle = keyword.strip().lower()
        for node in self.nodes:
            values = self.value_sets.get(node.key)
            if values is not None and values.matches_keyword(keyword):
                matches.append(node)
                continue
            if needle and (needle in node.position.lower() or needle in node.container.lower()):
                matches.append(node)
        return matches

    def size_in_bytes(self) -> int:
        """Approximate memory footprint of all value-set summaries."""
        return sum(summary.stats().bytes_used for summary in self.value_sets.values())

    def __len__(self) -> int:
        return len(self.nodes)


class DigestCatalog:
    """All source digests of a mixed instance plus cross-source join edges."""

    def __init__(self) -> None:
        self.digests: dict[str, SourceDigest] = {}
        self.join_edges: list[DigestEdge] = []

    # ------------------------------------------------------------------
    def add(self, digest: SourceDigest) -> SourceDigest:
        """Register the digest of one source."""
        self.digests[digest.source_uri] = digest
        return digest

    def digest(self, source_uri: str) -> SourceDigest:
        """Return the digest of ``source_uri``."""
        if source_uri not in self.digests:
            raise DigestError(f"no digest built for source {source_uri!r}")
        return self.digests[source_uri]

    def all_nodes(self) -> Iterator[DigestNode]:
        """Every node of every digest."""
        for digest in self.digests.values():
            yield from digest.nodes

    def values_of(self, node: DigestNode) -> ValueSetSummary | None:
        """Value-set summary of ``node`` wherever it lives."""
        digest = self.digests.get(node.source_uri)
        return digest.values_of(node) if digest else None

    # ------------------------------------------------------------------
    # Cross-source join discovery
    # ------------------------------------------------------------------
    def discover_join_edges(self, min_overlap: float = 0.05,
                            max_pairs: int | None = None) -> list[DigestEdge]:
        """Probe value sets across sources and record join-candidate edges.

        Two positions from *different* sources are connected when a sample
        of one side's values hits the other side's value summary with
        frequency at least ``min_overlap``.  The edge weight is
        ``1 - overlap`` so that stronger joins yield shorter paths.
        """
        self.join_edges = []
        nodes = [n for n in self.all_nodes() if self.values_of(n) is not None]
        pairs_checked = 0
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                if left.source_uri == right.source_uri:
                    continue
                if max_pairs is not None and pairs_checked >= max_pairs:
                    return self.join_edges
                pairs_checked += 1
                left_values = self.values_of(left)
                right_values = self.values_of(right)
                if left_values is None or right_values is None:
                    continue
                overlap = max(left_values.overlap_estimate(right_values),
                              right_values.overlap_estimate(left_values))
                if overlap >= min_overlap:
                    # Stronger overlap and more identifier-like positions
                    # (many distinct values) make better join keys, hence
                    # shorter path weights.
                    distinct = min(left_values.distinct_values, right_values.distinct_values)
                    weight = max(0.05, 1.0 - overlap) + 1.0 / (1.0 + distinct)
                    self.join_edges.append(DigestEdge(source=left, target=right,
                                                      kind="join-candidate", weight=weight))
        return self.join_edges

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.Graph":
        """Build the combined (undirected) digest graph for path search."""
        graph = nx.Graph()
        for digest in self.digests.values():
            for node in digest.nodes:
                graph.add_node(node)
            for edge in digest.edges:
                graph.add_edge(edge.source, edge.target, weight=edge.weight, kind=edge.kind)
        for edge in self.join_edges:
            graph.add_edge(edge.source, edge.target, weight=edge.weight, kind=edge.kind)
        return graph

    def lookup_keyword(self, keyword: str) -> list[DigestNode]:
        """Nodes of any digest matching ``keyword``."""
        matches: list[DigestNode] = []
        for digest in self.digests.values():
            matches.extend(digest.lookup_keyword(keyword))
        return matches

    def total_size_in_bytes(self) -> int:
        """Total footprint of every digest's value summaries."""
        return sum(d.size_in_bytes() for d in self.digests.values())

    def __len__(self) -> int:
        return len(self.digests)
