"""Building digests from the sources of a mixed instance.

TATOOINE "computes data source digests from the sources": the schema (or a
data-derived structural summary) plus value-set representations per
position.  One builder per data model:

* relational sources: one node per attribute, one edge per key/foreign-key
  constraint, plus same-table edges;
* RDF sources (and the glue graph): nodes derived from the RDF summary
  (one node per property of each property-clique class), reference edges
  following summary edges;
* full-text sources: nodes from the JSON dataguide paths; analysed text
  fields contribute their token sets as values;
* JSON document sources: nodes from the dataguide paths, values from the
  store's per-path indexes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cmq import GLUE_SOURCE
from repro.core.sources import (
    DataSource,
    FullTextSource,
    JSONSource,
    RDFSource,
    RelationalSource,
)
from repro.digest.dataguide import JSONDataguide
from repro.digest.graph import DigestCatalog, DigestNode, SourceDigest
from repro.digest.valueset import ValueSetSummary
from repro.errors import DigestError
from repro.rdf.summary import RDFSummary
from repro.rdf.terms import Literal, URI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import MixedInstance


class DigestBuilder:
    """Builds :class:`SourceDigest` objects for wrapped sources."""

    def __init__(self, bloom_bits_per_value: int = 16, histogram_buckets: int = 16,
                 exact_limit: int = 512):
        self.bloom_bits_per_value = bloom_bits_per_value
        self.histogram_buckets = histogram_buckets
        self.exact_limit = exact_limit

    # ------------------------------------------------------------------
    def build(self, source: DataSource) -> SourceDigest:
        """Build the digest of any supported source wrapper."""
        if isinstance(source, RelationalSource):
            return self.build_relational(source)
        if isinstance(source, FullTextSource):
            return self.build_fulltext(source)
        if isinstance(source, JSONSource):
            return self.build_json(source)
        if isinstance(source, RDFSource):
            return self.build_rdf(source)
        raise DigestError(f"cannot build a digest for source model {source.model!r}")

    # ------------------------------------------------------------------
    def build_relational(self, source: RelationalSource) -> SourceDigest:
        """Digest of a relational source: one node per attribute."""
        digest = SourceDigest(source_uri=source.uri, model=source.model)
        nodes_by_column: dict[tuple[str, str], DigestNode] = {}
        for table in source.database.tables():
            table_nodes = []
            for column in table.schema.columns:
                node = DigestNode(source_uri=source.uri, container=table.name,
                                  position=column.name, kind="column")
                summary = self._summary(table.column_values(column.name))
                digest.add_node(node, summary)
                nodes_by_column[(table.name.lower(), column.name.lower())] = node
                table_nodes.append(node)
            for i, left in enumerate(table_nodes):
                for right in table_nodes[i + 1:]:
                    digest.add_edge(left, right, kind="same-container")
        for table in source.database.tables():
            for fk in table.schema.foreign_keys:
                left = nodes_by_column.get((table.name.lower(), fk.column.lower()))
                right = nodes_by_column.get((fk.referenced_table.lower(),
                                             fk.referenced_column.lower()))
                if left is not None and right is not None:
                    digest.add_edge(left, right, kind="foreign-key", weight=0.5)
        digest.metadata["tables"] = source.database.table_names()
        return digest

    # ------------------------------------------------------------------
    def build_rdf(self, source: RDFSource) -> SourceDigest:
        """Digest of an RDF source from its structural summary."""
        digest = SourceDigest(source_uri=source.uri, model=source.model)
        summary = RDFSummary.build(source.graph)
        nodes_by_summary: dict[str, list[DigestNode]] = {}
        for node_id, summary_node in summary.nodes.items():
            container = _container_label(summary_node)
            property_nodes = []
            for prop in sorted(summary_node.properties, key=str):
                values = summary.values.get((node_id, prop), set())
                joinable = [_joinable(v) for v in values]
                aliases = [_alias(v) for v in values if isinstance(v, URI)]
                position = prop.local_name if isinstance(prop, URI) else str(prop)
                node = DigestNode(source_uri=source.uri, container=container,
                                  position=position, kind="rdf-property")
                digest.add_node(node, self._summary(joinable, aliases))
                property_nodes.append(node)
            nodes_by_summary[node_id] = property_nodes
            for i, left in enumerate(property_nodes):
                for right in property_nodes[i + 1:]:
                    digest.add_edge(left, right, kind="same-container")
        for edge in summary.edges:
            for left in nodes_by_summary.get(edge.source, []):
                prop_name = edge.prop.local_name if isinstance(edge.prop, URI) else str(edge.prop)
                if left.position != prop_name:
                    continue
                for right in nodes_by_summary.get(edge.target, []):
                    digest.add_edge(left, right, kind="reference", weight=0.5)
        digest.metadata["summary_nodes"] = len(summary.nodes)
        digest.metadata["triples"] = len(source.graph)
        return digest

    # ------------------------------------------------------------------
    def build_fulltext(self, source: FullTextSource) -> SourceDigest:
        """Digest of a Solr-like source from its JSON dataguide."""
        digest = SourceDigest(source_uri=source.uri, model=source.model)
        store = source.store
        dataguide = JSONDataguide.build(store.documents(), name=store.name)
        container = store.name
        nodes = []
        for path in dataguide.path_names():
            config = store.field_config(path)
            if config is not None and config.field_type == "text":
                # Analysed field: the atomic values are its (unstemmed) tokens,
                # so digest keyword lookups see the same surface forms users type.
                values: list[object] = []
                for text in store.field_values(path):
                    values.extend(store.analyzer.analyze(str(text)).tokens)
            else:
                values = store.field_values(path)
                if not values:
                    values = [v for d in store.documents() for v in _leaf_values(d, path)]
            node = DigestNode(source_uri=source.uri, container=container,
                              position=path, kind="field")
            digest.add_node(node, self._summary(values))
            nodes.append(node)
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                digest.add_edge(left, right, kind="same-container")
        digest.metadata["dataguide_paths"] = len(dataguide)
        digest.metadata["documents"] = len(store)
        return digest

    # ------------------------------------------------------------------
    def build_json(self, source: JSONSource) -> SourceDigest:
        """Digest of a JSON document source from its dataguide and indexes."""
        digest = SourceDigest(source_uri=source.uri, model=source.model)
        store = source.store
        dataguide = store.dataguide()
        container = store.name
        values_by_path = store.values_by_path()
        nodes = []
        for path in dataguide.path_names():
            node = DigestNode(source_uri=source.uri, container=container,
                              position=path, kind="field")
            digest.add_node(node, self._summary(values_by_path.get(path, [])))
            nodes.append(node)
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                digest.add_edge(left, right, kind="same-container")
        digest.metadata["dataguide_paths"] = len(dataguide)
        digest.metadata["documents"] = len(store)
        return digest

    # ------------------------------------------------------------------
    def _summary(self, values: list[object],
                 keyword_aliases: list[object] | None = None) -> ValueSetSummary:
        return ValueSetSummary(values, bloom_bits_per_value=self.bloom_bits_per_value,
                               histogram_buckets=self.histogram_buckets,
                               exact_limit=self.exact_limit,
                               keyword_aliases=keyword_aliases)


def build_catalog(instance: "MixedInstance", bloom_bits_per_value: int = 16,
                  histogram_buckets: int = 16, min_overlap: float = 0.05) -> DigestCatalog:
    """Build the digest catalog of a mixed instance.

    Returns a :class:`DigestCatalog` holding one digest per registered
    source plus one for the glue graph, with cross-source join-candidate
    edges already discovered.
    """
    builder = DigestBuilder(bloom_bits_per_value=bloom_bits_per_value,
                            histogram_buckets=histogram_buckets)
    catalog = DigestCatalog()
    catalog.add(builder.build_rdf(instance.glue_source))
    for source in instance.sources():
        catalog.add(builder.build(source))
    catalog.discover_join_edges(min_overlap=min_overlap)
    return catalog


def _joinable(term: object) -> object:
    """The value a source wrapper would return at query time for ``term``."""
    if isinstance(term, URI):
        return term.value
    if isinstance(term, Literal):
        return term.to_python()
    return term


def _alias(term: object) -> object:
    """Display form of ``term`` indexed for keyword matching only."""
    if isinstance(term, URI):
        return term.local_name
    if isinstance(term, Literal):
        return term.value
    return term


def _container_label(summary_node) -> str:
    classes = sorted(c.local_name if isinstance(c, URI) else str(c)
                     for c in summary_node.classes)
    if classes:
        return classes[0]
    return summary_node.node_id.split("#", 1)[-1]


def _leaf_values(document, path: str) -> list[object]:
    value = document.get(path)
    if value is None:
        return []
    if isinstance(value, list):
        return list(value)
    return [value]
