"""Source digests and keyword-based querying.

Digests summarise each source of the mixed instance (schema or structural
summary + value-set representations built from Bloom filters, histograms
and exact samples); the keyword engine looks keywords up in the digests,
finds shortest join paths across sources and generates Conjunctive Mixed
Queries from them.
"""

from repro.digest.bloom import BloomFilter
from repro.digest.builder import DigestBuilder, build_catalog
from repro.digest.dataguide import JSONDataguide, PathInfo
from repro.digest.graph import DigestCatalog, DigestEdge, DigestNode, SourceDigest
from repro.digest.histogram import Bucket, EquiWidthHistogram, TopKSummary
from repro.digest.keyword import (
    GeneratedQuery,
    KeywordHit,
    KeywordQueryEngine,
    KeywordSearchOutcome,
)
from repro.digest.sieve import DigestSieve
from repro.digest.valueset import ValueSetStats, ValueSetSummary

__all__ = [
    "DigestSieve",
    "BloomFilter",
    "DigestBuilder",
    "build_catalog",
    "JSONDataguide",
    "PathInfo",
    "DigestCatalog",
    "DigestEdge",
    "DigestNode",
    "SourceDigest",
    "Bucket",
    "EquiWidthHistogram",
    "TopKSummary",
    "GeneratedQuery",
    "KeywordHit",
    "KeywordQueryEngine",
    "KeywordSearchOutcome",
    "ValueSetStats",
    "ValueSetSummary",
]
