"""JSON dataguides: data-derived structural summaries of document sources.

When a source has no declared schema, the paper uses "data-derived
structural summaries, i.e., XML or JSON Dataguides" (§2.2).  A dataguide
records every dotted path observed in a document collection together with
the value types and occurrence counts at that path.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.fulltext.document import Document


@dataclass
class PathInfo:
    """What the dataguide knows about one dotted path."""

    path: str
    count: int = 0
    types: set[str] = field(default_factory=set)
    sample_values: list[object] = field(default_factory=list)
    max_samples: int = 5

    def observe(self, value: object) -> None:
        """Record one occurrence of ``value`` at this path."""
        self.count += 1
        self.types.add(type(value).__name__)
        if len(self.sample_values) < self.max_samples and value is not None:
            self.sample_values.append(value)

    @property
    def is_numeric(self) -> bool:
        return self.types <= {"int", "float"} and bool(self.types)


class JSONDataguide:
    """Structural summary of a JSON document collection."""

    def __init__(self, name: str = "dataguide"):
        self.name = name
        self.paths: dict[str, PathInfo] = {}
        self.document_count = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, documents: Iterable[Document | dict[str, Any]],
              name: str = "dataguide") -> "JSONDataguide":
        """Build a dataguide from documents (raw dicts are accepted)."""
        guide = cls(name=name)
        for doc in documents:
            guide.observe(doc)
        return guide

    def observe(self, document: Document | dict[str, Any]) -> None:
        """Add one document's paths to the dataguide."""
        self.document_count += 1
        if isinstance(document, Document):
            leaves = document.flat_fields()
        else:
            leaves = Document(doc_id="_", fields=dict(document)).flat_fields()
        for path, value in leaves:
            info = self.paths.get(path)
            if info is None:
                info = PathInfo(path=path)
                self.paths[path] = info
            info.observe(value)

    # ------------------------------------------------------------------
    def path_names(self) -> list[str]:
        """Every observed dotted path, sorted."""
        return sorted(self.paths)

    def info(self, path: str) -> PathInfo | None:
        """Return the :class:`PathInfo` of ``path`` if observed."""
        return self.paths.get(path)

    def coverage(self, path: str) -> float:
        """Fraction of documents in which ``path`` occurs at least once."""
        info = self.paths.get(path)
        if info is None or self.document_count == 0:
            return 0.0
        return min(1.0, info.count / self.document_count)

    def parent_children(self) -> dict[str, list[str]]:
        """Tree structure: parent path -> direct child paths."""
        children: dict[str, list[str]] = defaultdict(list)
        for path in self.path_names():
            if "." in path:
                parent = path.rsplit(".", 1)[0]
            else:
                parent = ""
            children[parent].append(path)
        return dict(children)

    def to_text(self) -> str:
        """Indented textual rendering of the dataguide tree."""
        lines = [f"dataguide {self.name} ({self.document_count} documents)"]
        for path in self.path_names():
            info = self.paths[path]
            depth = path.count(".")
            types = ",".join(sorted(info.types))
            lines.append(f"{'  ' * (depth + 1)}{path} [{types}] x{info.count}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.paths)
