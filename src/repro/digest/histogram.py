"""Histograms for digest value sets (numeric and categorical)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class Bucket:
    """One equi-width histogram bucket ``[low, high)`` (last bucket closed)."""

    low: float
    high: float
    count: int = 0


class EquiWidthHistogram:
    """Equi-width histogram over numeric values."""

    def __init__(self, values: Sequence[float], buckets: int = 16):
        cleaned = [float(v) for v in values if v is not None]
        self.total = len(cleaned)
        self.buckets: list[Bucket] = []
        if not cleaned:
            self.low = 0.0
            self.high = 0.0
            return
        self.low = min(cleaned)
        self.high = max(cleaned)
        buckets = max(1, buckets)
        width = (self.high - self.low) / buckets or 1.0
        self.buckets = [Bucket(self.low + i * width, self.low + (i + 1) * width)
                        for i in range(buckets)]
        for value in cleaned:
            index = min(int((value - self.low) / width), buckets - 1)
            self.buckets[index].count += 1

    def estimate_range(self, low: float | None, high: float | None) -> float:
        """Estimated number of values in ``[low, high]`` (linear interpolation)."""
        if not self.buckets or self.total == 0:
            return 0.0
        low = self.low if low is None else low
        high = self.high if high is None else high
        if high < low:
            return 0.0
        if high == low:
            # Point estimate: the count of the bucket containing the value.
            for bucket in self.buckets:
                if bucket.low <= low < bucket.high or (low == self.high and bucket is self.buckets[-1]):
                    return float(bucket.count)
            return 0.0
        estimate = 0.0
        for bucket in self.buckets:
            overlap_low = max(low, bucket.low)
            overlap_high = min(high, bucket.high)
            if overlap_high <= overlap_low:
                continue
            width = bucket.high - bucket.low or 1.0
            estimate += bucket.count * (overlap_high - overlap_low) / width
        return min(estimate, float(self.total))

    def estimate_selectivity(self, low: float | None, high: float | None) -> float:
        """Estimated fraction of values falling in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range(low, high) / self.total

    def might_contain(self, value: float) -> bool:
        """True when ``value`` falls in a non-empty bucket."""
        if not self.buckets:
            return False
        if value < self.low or value > self.high:
            return False
        for bucket in self.buckets:
            if bucket.low <= value < bucket.high or (value == self.high and bucket is self.buckets[-1]):
                return bucket.count > 0
        return False

    def size_in_bytes(self) -> int:
        """Approximate memory footprint (3 floats per bucket)."""
        return 24 * len(self.buckets) + 24


class TopKSummary:
    """Most frequent values of a categorical position, with their counts."""

    def __init__(self, values: Iterable[object], k: int = 20):
        counter = Counter(str(v).strip().lower() for v in values if v is not None)
        self.total = sum(counter.values())
        self.k = k
        self.entries: list[tuple[str, int]] = counter.most_common(k)
        self.distinct = len(counter)

    def frequency(self, value: object) -> int:
        """Observed count of ``value`` if it is among the top-k, else 0."""
        needle = str(value).strip().lower()
        for entry, count in self.entries:
            if entry == needle:
                return count
        return 0

    def contains(self, value: object) -> bool:
        """True when ``value`` is one of the recorded top-k values."""
        return self.frequency(value) > 0

    def estimate_equality_selectivity(self, value: object) -> float:
        """Selectivity estimate of an equality predicate on ``value``."""
        if self.total == 0:
            return 0.0
        frequency = self.frequency(value)
        if frequency:
            return frequency / self.total
        remaining = max(self.distinct - len(self.entries), 1)
        covered = sum(count for _, count in self.entries)
        return max(0.0, (self.total - covered) / remaining / self.total)
