"""Digest-backed semi-join sieve for batched bind joins.

Before a batch of bindings ships to a source, each binding is probed
against the source digest's value-set summaries (exact sets and Bloom
filters, :mod:`repro.digest.valueset`).  Bloom filters have **no false
negatives**, so a binding is only dropped when the digest *proves* that
no source row can match it — the sieve may let useless bindings through
(false positives) but never loses a true match.

The mapping from sub-query variables to digest positions is deliberately
conservative: a variable is only probed when the digest position is
guaranteed to hold a superset of the values the source could return or
accept for it.  Cases where that cannot be guaranteed (entailment-backed
RDF sources, analysed full-text fields, SQL expressions, missing
digests) disable the probe — or the whole sieve — rather than risk
dropping answers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.cmq import SourceAtom
from repro.core.sources import (
    DataSource,
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    Row,
    SourceQuery,
    SQLQuery,
    _clause_placeholder_fields,
    _equality_placeholder_columns,
    _plain_select_items,
    _referenced_tables,
)
from repro.digest.graph import DigestCatalog
from repro.digest.valueset import ValueSetSummary
from repro.rdf.terms import URI, Variable

#: Variable name -> the value summaries its bindings may be probed against.
PositionMap = dict[str, list[ValueSetSummary]]


class DigestSieve:
    """Builds per-atom sieve predicates from a :class:`DigestCatalog`."""

    def __init__(self, catalog: DigestCatalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    def sieve_for(self, atom: SourceAtom,
                  sources: list[DataSource]) -> Optional[Callable[[Row], bool]]:
        """A predicate keeping only bindings that may match at a source.

        Returns ``None`` when no safe probe exists (no digest, an
        unsieveable source, or simply nothing to check).  With several
        candidate sources (dynamic atoms) a binding survives when *any*
        source might match it.
        """
        per_source: list[PositionMap] = []
        for source in sources:
            position_map = self._positions_for(atom.query, source)
            if position_map is None:
                # One source we cannot reason about makes every binding
                # potentially matchable: the sieve would be vacuous.
                return None
            per_source.append(position_map)
        if not any(per_source):
            return None

        def keep(binding: Row) -> bool:
            formal = atom.formal_bindings(binding)
            return any(_might_match(formal, position_map)
                       for position_map in per_source)

        return keep

    # ------------------------------------------------------------------
    def _positions_for(self, query: SourceQuery,
                       source: DataSource) -> Optional[PositionMap]:
        digest = self.catalog.digests.get(source.uri)
        if digest is None:
            return None
        if isinstance(source, RDFSource) and isinstance(query, RDFQuery):
            if source.entailment:
                # The digest summarises the raw graph; entailment could
                # surface values at properties the digest never saw.
                return None
            return self._rdf_positions(query, digest)
        if isinstance(source, RelationalSource) and isinstance(query, SQLQuery):
            return self._sql_positions(query, digest)
        if isinstance(source, FullTextSource) and isinstance(query, FullTextQuery):
            return self._fulltext_positions(query, source, digest)
        if isinstance(source, JSONSource) and isinstance(query, JSONQuery):
            return self._json_positions(query, digest)
        return None

    def _rdf_positions(self, query: RDFQuery, digest) -> PositionMap:
        # A variable in object position of a constant property must take
        # one of that property's values; digest nodes are keyed by the
        # property's local name (unioned over every summary container).
        position_map: PositionMap = {}
        for pattern in query.bgp.patterns:
            if not isinstance(pattern.predicate, URI):
                continue
            if not isinstance(pattern.obj, Variable):
                continue
            summaries = _summaries_at(digest, pattern.predicate.local_name)
            if summaries:
                position_map.setdefault(pattern.obj.name, []).extend(summaries)
        return position_map

    def _sql_positions(self, query: SQLQuery, digest) -> PositionMap:
        tables = {t.lower() for t in _referenced_tables(query.sql)}
        position_map: PositionMap = {}
        # Output variables that are plain (possibly aliased) columns.
        for variable, column in _plain_output_columns(query.sql).items():
            summaries = _summaries_at(digest, column, containers=tables)
            if summaries:
                position_map[variable] = summaries
        # Placeholders compared with a column by equality.
        for variable, ident in _equality_placeholder_columns(query.sql).items():
            summaries = _summaries_at(digest, ident.split(".")[-1], containers=tables)
            if summaries:
                position_map.setdefault(variable, []).extend(summaries)
        return position_map

    def _fulltext_positions(self, query: FullTextQuery, source: FullTextSource,
                            digest) -> PositionMap:
        position_map: PositionMap = {}
        for variable, path in query.fields().items():
            if path == "_score":
                continue
            config = source.store.field_config(path)
            if config is None or config.field_type == "text":
                # Analysed fields are digested token-wise; probing a full
                # string against tokens could drop true matches.
                continue
            summaries = _summaries_at(digest, path)
            if summaries:
                position_map[variable] = summaries
        for variable, path in _clause_placeholder_fields(query.query_template).items():
            config = source.store.field_config(path)
            if config is None or config.field_type != "keyword":
                continue
            summaries = _summaries_at(digest, path)
            if summaries:
                position_map.setdefault(variable, []).extend(summaries)
        return position_map

    def _json_positions(self, query: JSONQuery, digest) -> PositionMap:
        from repro.json.pattern import Parameter as JSONParameter

        position_map: PositionMap = {}
        for leaf in query.pattern.leaves:
            summaries = _summaries_at(digest, leaf.path)
            if not summaries:
                continue
            if leaf.variable is not None:
                position_map.setdefault(leaf.variable, []).extend(summaries)
            for predicate in leaf.predicates:
                if predicate.op == "=" and isinstance(predicate.value, JSONParameter):
                    position_map.setdefault(predicate.value.name, []).extend(summaries)
        return position_map


def _summaries_at(digest, position: str,
                  containers: set[str] | None = None) -> list[ValueSetSummary]:
    """Every value summary stored at ``position`` (optionally filtered)."""
    summaries = []
    for node in digest.nodes:
        if node.position.lower() != position.lower():
            continue
        if containers and node.container.lower() not in containers:
            continue
        summary = digest.values_of(node)
        if summary is not None:
            summaries.append(summary)
    return summaries


def _might_match(formal: Row, position_map: PositionMap) -> bool:
    """False only when some probed variable is provably absent everywhere."""
    for variable, summaries in position_map.items():
        value = formal.get(variable)
        if value is None or isinstance(value, bool) or not isinstance(value, (str, int, float)):
            continue
        variants = _probe_variants(value)
        if summaries and not any(summary.might_contain(variant)
                                 for summary in summaries
                                 for variant in variants):
            return False
    return True


def _probe_variants(value: object) -> list[object]:
    """Every canonical form a source's ``==`` could accept for ``value``.

    Value summaries normalise through ``str()``, under which ``5`` and
    ``5.0`` differ even though the sources compare them equal — probe
    both spellings so a numeric binding never sieves out a true match.
    """
    variants: list[object] = [value]
    if isinstance(value, float) and value.is_integer():
        variants.append(int(value))
    elif isinstance(value, int):
        variants.append(float(value))
    if isinstance(value, (int, float)) and value in (0, 1):
        # Sources compare 1 == True and 0 == False; digests spell the
        # stored booleans "true"/"false".
        variants.append(bool(value))
    return variants


def _plain_output_columns(sql: str) -> dict[str, str]:
    """Output variable -> underlying column, for plain SELECT items only."""
    return {output: expression.split(".")[-1]
            for expression, output in _plain_select_items(sql)}
