"""Keyword-based querying over a mixed instance.

Given search keywords (e.g. ``"head of state"`` and ``"SIA2016"``), the
engine (paper §2.2):

1. looks the keywords up in the value-set representations of the source
   digests (and in position/schema names),
2. identifies the shortest join paths connecting the keyword hits in the
   combined digest graph (following the approach of Le et al. [9]), where
   cross-source join-candidate edges come from value-set overlap probing,
3. generates one Conjunctive Mixed Query per retained join path, and
4. evaluates the most promising generated queries over the instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

import networkx as nx

from repro.core.cmq import ConjunctiveMixedQuery, GLUE_SOURCE, SourceAtom
from repro.core.results import MixedResult
from repro.core.sources import (
    DataSource,
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SQLQuery,
)
from repro.digest.graph import DigestCatalog, DigestNode
from repro.errors import KeywordSearchError
from repro.json.pattern import PatternLeaf, Predicate, TreePattern
from repro.rdf.bgp import BGPQuery
from repro.rdf.terms import Literal, Term, TriplePattern, URI, Variable
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import MixedInstance


@dataclass
class KeywordHit:
    """One digest node matching one keyword."""

    keyword: str
    node: DigestNode
    matched_values: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return f"{self.keyword!r} @ {self.node.source_uri}:{self.node.label()}"


@dataclass
class GeneratedQuery:
    """A candidate CMQ generated from one join path."""

    query: ConjunctiveMixedQuery
    path: list[DigestNode]
    hits: list[KeywordHit]
    cost: float

    def describe(self) -> str:
        steps = " -> ".join(f"{n.source_uri.split('/')[-1]}:{n.label()}" for n in self.path)
        return f"[cost {self.cost:.2f}] {self.query}  via  {steps}"


@dataclass
class KeywordSearchOutcome:
    """Everything the keyword engine produced for one keyword query."""

    keywords: list[str]
    hits: list[KeywordHit]
    candidates: list[GeneratedQuery]
    best: Optional[GeneratedQuery] = None
    result: Optional[MixedResult] = None

    def summary(self) -> str:
        lines = [f"keywords: {self.keywords}",
                 f"digest hits: {len(self.hits)}",
                 f"candidate queries: {len(self.candidates)}"]
        if self.best is not None:
            lines.append(f"best: {self.best.describe()}")
        if self.result is not None:
            lines.append(f"answers: {len(self.result)}")
        return "\n".join(lines)


class KeywordQueryEngine:
    """Generates and evaluates CMQs from keyword queries."""

    def __init__(self, instance: "MixedInstance", catalog: DigestCatalog | None = None,
                 max_hits_per_keyword: int = 5, max_evaluated_candidates: int = 12):
        self.instance = instance
        self.catalog = catalog if catalog is not None else instance.build_digests()
        self.max_hits_per_keyword = max_hits_per_keyword
        self.max_evaluated_candidates = max_evaluated_candidates
        self._graph = self.catalog.to_networkx()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def search(self, keywords: Sequence[str], max_queries: int = 3,
               evaluate: bool = True, limit: int | None = None) -> KeywordSearchOutcome:
        """Run the full keyword-query pipeline."""
        keywords = [k for k in keywords if k and k.strip()]
        if not keywords:
            raise KeywordSearchError("keyword query needs at least one keyword")
        hits_per_keyword = self.lookup(keywords)
        all_hits = [hit for hits in hits_per_keyword for hit in hits]
        ranked = self.generate_queries(hits_per_keyword, max_queries=None)
        candidates = ranked[:max_queries]
        outcome = KeywordSearchOutcome(keywords=list(keywords), hits=all_hits,
                                       candidates=candidates)
        if evaluate:
            # Walk beyond the displayed top-k when the cheapest join paths
            # all come back empty (frequent in instances where one source
            # offers many cheap same-container paths).
            for candidate in ranked[:max(max_queries, self.max_evaluated_candidates)]:
                try:
                    result = self.instance.execute(candidate.query, limit=limit)
                except Exception:  # noqa: BLE001 - a failed candidate is skipped
                    continue
                if outcome.best is None:
                    outcome.best, outcome.result = candidate, result
                if result:
                    outcome.best, outcome.result = candidate, result
                    if candidate not in candidates:
                        outcome.candidates.append(candidate)
                    break
        return outcome

    # ------------------------------------------------------------------
    # Step 1: keyword lookup in the digests
    # ------------------------------------------------------------------
    def lookup(self, keywords: Sequence[str]) -> list[list[KeywordHit]]:
        """Return, per keyword, its matching digest nodes (best first)."""
        hits_per_keyword: list[list[KeywordHit]] = []
        for keyword in keywords:
            nodes = self.catalog.lookup_keyword(keyword)
            hits = []
            for node in nodes:
                values = self.catalog.values_of(node)
                matched = values.matching_values(keyword) if values is not None else []
                hits.append(KeywordHit(keyword=keyword, node=node, matched_values=matched))
            hits.sort(key=lambda h: (not h.matched_values, h.node.label()))
            hits_per_keyword.append(hits[: self.max_hits_per_keyword])
            if not hits:
                raise KeywordSearchError(f"keyword {keyword!r} matches no digest position")
        return hits_per_keyword

    # ------------------------------------------------------------------
    # Step 2 + 3: join paths and query generation
    # ------------------------------------------------------------------
    def generate_queries(self, hits_per_keyword: list[list[KeywordHit]],
                         max_queries: int | None = 3) -> list[GeneratedQuery]:
        """Enumerate join paths between keyword hits and build CMQs."""
        candidates: list[GeneratedQuery] = []
        seen_paths: set[tuple] = set()
        for combination in itertools.product(*hits_per_keyword):
            path, cost = self._connect([hit.node for hit in combination])
            if path is None:
                continue
            key = tuple(sorted(str(node) for node in path))
            if key in seen_paths:
                continue
            seen_paths.add(key)
            try:
                query = self._build_query(path, list(combination))
            except KeywordSearchError:
                continue
            if self._provably_empty(query):
                continue
            candidates.append(GeneratedQuery(query=query, path=path,
                                             hits=list(combination), cost=cost))
        candidates.sort(key=lambda c: c.cost)
        if max_queries is None:
            return candidates
        return candidates[:max_queries]

    def _provably_empty(self, query: ConjunctiveMixedQuery) -> bool:
        """True when source statistics prove an atom returns nothing.

        Cheap same-container join paths (frequent in document sources,
        where every dotted path is a digest position) often pair keyword
        constants that never co-occur; the per-path indexes answer that
        conjunction exactly, so such candidates are dropped before they
        are ranked or evaluated.
        """
        for atom in query.atoms:
            if atom.source is None:
                continue
            try:
                source = self.instance.source(atom.source)
            except Exception:  # noqa: BLE001 - unresolvable sources fail later
                continue
            if source.estimate(atom.query) == 0.0:
                return True
        return False

    def _connect(self, nodes: list[DigestNode]) -> tuple[Optional[list[DigestNode]], float]:
        """Connect hit nodes with shortest paths (greedy Steiner heuristic)."""
        if not nodes:
            return None, float("inf")
        if len(nodes) == 1:
            return list(nodes), 0.0
        graph = self._graph
        for node in nodes:
            if node not in graph:
                return None, float("inf")
        covered: list[DigestNode] = [nodes[0]]
        total_cost = 0.0
        path_nodes: list[DigestNode] = [nodes[0]]
        for target in nodes[1:]:
            best_path = None
            best_cost = float("inf")
            for start in covered:
                try:
                    cost, path = nx.single_source_dijkstra(graph, start, target, weight="weight")
                except nx.NetworkXNoPath:
                    continue
                if cost < best_cost:
                    best_cost, best_path = cost, path
            if best_path is None:
                return None, float("inf")
            total_cost += best_cost
            for node in best_path:
                if node not in path_nodes:
                    path_nodes.append(node)
            covered.append(target)
        return path_nodes, total_cost

    # ------------------------------------------------------------------
    def _build_query(self, path: list[DigestNode], hits: list[KeywordHit]) -> ConjunctiveMixedQuery:
        """Generate a CMQ from the nodes of one join path."""
        variables = self._assign_variables(path)
        hit_by_node = {hit.node: hit for hit in hits}

        atoms: list[SourceAtom] = []
        head: list[str] = []
        by_source: dict[str, list[DigestNode]] = {}
        for node in path:
            by_source.setdefault(node.source_uri, []).append(node)

        for source_uri, nodes in by_source.items():
            source = self.instance.source(source_uri)
            if isinstance(source, RDFSource):
                atom = self._rdf_atom(source, source_uri, nodes, variables, hit_by_node)
            elif isinstance(source, FullTextSource):
                atom = self._fulltext_atom(source, source_uri, nodes, variables, hit_by_node)
            elif isinstance(source, RelationalSource):
                atom = self._sql_atom(source, source_uri, nodes, variables, hit_by_node)
            elif isinstance(source, JSONSource):
                atom = self._json_atom(source, source_uri, nodes, variables, hit_by_node)
            else:
                raise KeywordSearchError(
                    f"cannot generate a sub-query for source model {source.model!r}"
                )
            atoms.append(atom)
            head.extend(v for v in sorted(atom.output_variables()) if v not in head)

        if not atoms:
            raise KeywordSearchError("join path produced no sub-query")
        name = "kw_" + "_".join(_safe(hit.keyword) for hit in hits)
        return ConjunctiveMixedQuery(name=name, head=tuple(head), atoms=atoms)

    def _assign_variables(self, path: list[DigestNode]) -> dict[DigestNode, str]:
        """One CMQ variable per path node; join-candidate edges share a variable."""
        parent: dict[DigestNode, DigestNode] = {node: node for node in path}

        def find(node: DigestNode) -> DigestNode:
            while parent[node] is not node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: DigestNode, b: DigestNode) -> None:
            parent[find(a)] = find(b)

        graph = self._graph
        for i, left in enumerate(path):
            for right in path[i + 1:]:
                data = graph.get_edge_data(left, right)
                if data and data.get("kind") == "join-candidate":
                    union(left, right)

        variables: dict[DigestNode, str] = {}
        names: dict[DigestNode, str] = {}
        counter = 0
        for node in path:
            root = find(node)
            if root not in names:
                names[root] = f"v{counter}"
                counter += 1
            variables[node] = names[root]
        return variables

    # ------------------------------------------------------------------
    # Per-model atom generation
    # ------------------------------------------------------------------
    def _rdf_atom(self, source: RDFSource, source_uri: str, nodes: list[DigestNode],
                  variables: dict[DigestNode, str],
                  hit_by_node: dict[DigestNode, KeywordHit]) -> SourceAtom:
        graph = source.graph
        predicates = {p.local_name if isinstance(p, URI) else str(p): p
                      for p in graph.predicates()}
        patterns: list[TriplePattern] = []
        output: list[Variable] = []
        for node in nodes:
            prop = predicates.get(node.position)
            if prop is None:
                raise KeywordSearchError(
                    f"property {node.position!r} not found in RDF source {source_uri!r}"
                )
            subject = Variable(f"e_{_safe(node.container)}")
            hit = hit_by_node.get(node)
            if hit is not None:
                term = self._find_rdf_constant(graph, prop, hit.keyword)
                if term is not None:
                    patterns.append(TriplePattern(subject, prop, term))
                    continue
            value_var = Variable(variables[node])
            patterns.append(TriplePattern(subject, prop, value_var))
            if value_var not in output:
                output.append(value_var)
        if not patterns:
            raise KeywordSearchError("RDF join-path segment produced no triple pattern")
        if not output:
            # Every position was constrained to a constant: expose the subject.
            output = [patterns[0].subject] if isinstance(patterns[0].subject, Variable) else []
        bgp = BGPQuery(head=tuple(output), patterns=tuple(patterns), name="qG")
        atom_source = GLUE_SOURCE if source_uri == GLUE_SOURCE else source_uri
        return SourceAtom(name=f"rdf_{_safe(nodes[0].container)}", query=RDFQuery(bgp=bgp),
                          source=atom_source)

    def _fulltext_atom(self, source: FullTextSource, source_uri: str,
                       nodes: list[DigestNode], variables: dict[DigestNode, str],
                       hit_by_node: dict[DigestNode, KeywordHit]) -> SourceAtom:
        clauses: list[str] = []
        fields: dict[str, str] = {}
        for node in nodes:
            hit = hit_by_node.get(node)
            if hit is not None:
                value = hit.matched_values[0] if hit.matched_values else hit.keyword
                if " " in value:
                    clauses.append(f'{node.position}:"{value}"')
                else:
                    clauses.append(f"{node.position}:{value}")
            fields[variables[node]] = node.position
        # Always expose the default text field so journalists see the content.
        if source.store.default_field and source.store.default_field not in fields.values():
            fields[f"txt_{_safe(source.store.name)}"] = source.store.default_field
        query_text = " AND ".join(clauses) if clauses else "*:*"
        query = FullTextQuery.create(query_text, fields, limit=None)
        return SourceAtom(name=f"ft_{_safe(source.store.name)}", query=query, source=source_uri)

    def _json_atom(self, source: JSONSource, source_uri: str,
                   nodes: list[DigestNode], variables: dict[DigestNode, str],
                   hit_by_node: dict[DigestNode, KeywordHit]) -> SourceAtom:
        leaves: list[PatternLeaf] = []
        for node in nodes:
            hit = hit_by_node.get(node)
            predicates: tuple[Predicate, ...] = ()
            if hit is not None:
                value = hit.matched_values[0] if hit.matched_values else hit.keyword
                predicates = (Predicate("=", value),)
            leaves.append(PatternLeaf(path=node.position, variable=variables[node],
                                      predicates=predicates))
        # Always expose the main content path so journalists see the text.
        text_path = source.store.text_path
        if text_path and all(leaf.path != text_path for leaf in leaves):
            leaves.append(PatternLeaf(path=text_path,
                                      variable=f"txt_{_safe(source.store.name)}"))
        pattern = TreePattern(leaves=tuple(leaves))
        return SourceAtom(name=f"json_{_safe(source.store.name)}",
                          query=JSONQuery(pattern=pattern), source=source_uri)

    def _sql_atom(self, source: RelationalSource, source_uri: str,
                  nodes: list[DigestNode], variables: dict[DigestNode, str],
                  hit_by_node: dict[DigestNode, KeywordHit]) -> SourceAtom:
        by_table: dict[str, list[DigestNode]] = {}
        for node in nodes:
            by_table.setdefault(node.container, []).append(node)
        if len(by_table) > 1:
            # Keep the generated SQL simple: restrict to the table holding a
            # keyword hit (or the first one), other tables reached through
            # separate atoms would need FK traversal.
            hit_tables = [t for t, ns in by_table.items() if any(n in hit_by_node for n in ns)]
            table = hit_tables[0] if hit_tables else next(iter(by_table))
            nodes = by_table[table]
        else:
            table = next(iter(by_table))
        select_items = []
        conditions = []
        for node in nodes:
            select_items.append(f"{node.position} AS {variables[node]}")
            hit = hit_by_node.get(node)
            if hit is not None:
                value = hit.matched_values[0] if hit.matched_values else hit.keyword
                escaped = str(value).replace("'", "''")
                conditions.append(f"{node.position} LIKE '%{escaped}%'")
        sql = f"SELECT {', '.join(select_items)} FROM {table}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        return SourceAtom(name=f"sql_{_safe(table)}", query=SQLQuery(sql=sql), source=source_uri)

    # ------------------------------------------------------------------
    @staticmethod
    def _find_rdf_constant(graph, prop: URI, keyword: str) -> Term | None:
        """Find the concrete RDF term whose display form matches ``keyword``."""
        needle = _squeeze(keyword)
        for triple_ in graph.match(TriplePattern(Variable("s"), prop, Variable("o"))):
            obj = triple_.obj
            display = obj.local_name if isinstance(obj, URI) else (
                obj.value if isinstance(obj, Literal) else str(obj)
            )
            if _squeeze(display) == needle or needle in _squeeze(display):
                return obj
        return None


def _safe(text: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in text.strip().lower()).strip("_") or "x"


def _squeeze(text: str) -> str:
    return "".join(ch for ch in str(text).lower() if ch.isalnum())
