"""Value-set representations attached to digest positions.

Every position of a source digest (an attribute, a document field path, an
RDF property) carries "a representation of the set of atomic values ...
associated to each position in the schema" (paper §2.2).  A
:class:`ValueSetSummary` combines:

* an exact sample (kept whole when the value set is small),
* a Bloom filter over normalised values and over their individual tokens,
* an equi-width histogram when the values are numeric,
* a top-k frequency summary for categorical selectivity estimation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.digest.bloom import BloomFilter
from repro.digest.histogram import EquiWidthHistogram, TopKSummary

_WORD_RE = re.compile(r"[\w]+", re.UNICODE)

#: Value sets at most this large are also kept exactly.
EXACT_SET_LIMIT = 512


@dataclass
class ValueSetStats:
    """Size/precision bookkeeping for a value-set summary."""

    total_values: int
    distinct_values: int
    numeric: bool
    exact_kept: bool
    bytes_used: int


class ValueSetSummary:
    """Compact representation of the values observed at one digest position.

    ``values`` are the *joinable* values — exactly what the source wrapper
    would return at query time, so overlap probing between two summaries
    predicts real join opportunities.  ``keyword_aliases`` are additional
    display strings (e.g. the local name of a URI) indexed only for keyword
    matching, never for membership or overlap tests.
    """

    def __init__(self, values: Sequence[object], bloom_bits_per_value: int = 16,
                 histogram_buckets: int = 16, exact_limit: int = EXACT_SET_LIMIT,
                 top_k: int = 20, keyword_aliases: Sequence[object] | None = None):
        self._exact_limit = exact_limit
        cleaned = [v for v in values if v is not None]
        normalized = [_normalize(v) for v in cleaned]
        self.total_values = len(cleaned)
        distinct = sorted(set(normalized))
        self.distinct_values = len(distinct)
        self.exact: set[str] | None = set(distinct) if len(distinct) <= exact_limit else None

        self.bloom = BloomFilter(max(1, self.distinct_values), bits_per_value=bloom_bits_per_value)
        self.bloom.add_all(distinct)

        alias_values = [_normalize(v) for v in (keyword_aliases or ()) if v is not None]
        alias_distinct = sorted(set(alias_values))
        self.alias_exact: set[str] | None = (
            set(alias_distinct) if len(alias_distinct) <= exact_limit else None
        )
        searchable = distinct + alias_distinct
        self.token_bloom = BloomFilter(max(1, len(searchable) * 2),
                                       bits_per_value=bloom_bits_per_value)
        tokens: set[str] = set()
        for value in searchable:
            tokens.update(_tokens(value))
        self.token_bloom.add_all(tokens)
        self.alias_bloom = BloomFilter(max(1, len(alias_distinct)),
                                       bits_per_value=bloom_bits_per_value)
        self.alias_bloom.add_all(alias_distinct)

        numeric_values = [v for v in cleaned if isinstance(v, (int, float)) and not isinstance(v, bool)]
        self.numeric = bool(numeric_values) and len(numeric_values) == len(cleaned)
        self.histogram = EquiWidthHistogram(numeric_values, buckets=histogram_buckets) if self.numeric else None
        self.top_k = TopKSummary(normalized, k=top_k)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def absorb(self, values: Iterable[object]) -> None:
        """Fold an insert-only delta into the summary, in place.

        Built for streaming ingestion: instead of re-scanning a column
        after every batch, the statistics catalog feeds just the inserted
        values here.  Membership stays free of false negatives (Bloom
        filters only gain bits; the exact set degrades to Bloom-only past
        its limit), while the histogram absorbs out-of-range values by
        clamping into the edge buckets and the top-k counts drift toward
        an approximation — all uses are selectivity *estimates*, where
        monotone approximation is acceptable and absence-proofs must stay
        exact.  Removals cannot be absorbed; the caller rebuilds instead.
        """
        cleaned = [v for v in values if v is not None]
        if not cleaned:
            return
        normalized = [_normalize(v) for v in cleaned]
        self.total_values += len(cleaned)
        fresh = sorted(set(normalized))
        if self.exact is not None:
            self.exact.update(fresh)
            self.distinct_values = len(self.exact)
            if len(self.exact) > self._exact_limit:
                self.exact = None
        else:
            self.distinct_values += sum(
                1 for v in fresh if not self.bloom.might_contain(v))
        self.bloom.add_all(fresh)
        tokens: set[str] = set()
        for value in fresh:
            tokens.update(_tokens(value))
        self.token_bloom.add_all(tokens)
        numeric_values = [v for v in cleaned
                          if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if self.numeric:
            if len(numeric_values) != len(cleaned):
                self.numeric = False
                self.histogram = None
            elif self.histogram is not None:
                self._absorb_histogram(numeric_values)
        self._absorb_top_k(normalized)

    def _absorb_histogram(self, values: Sequence[float]) -> None:
        histogram = self.histogram
        if not histogram.buckets:
            self.histogram = EquiWidthHistogram(values,
                                                buckets=len(histogram.buckets) or 16)
            return
        span = histogram.high - histogram.low
        width = (span / len(histogram.buckets)) or 1.0
        for value in values:
            v = float(value)
            index = min(max(int((v - histogram.low) / width), 0),
                        len(histogram.buckets) - 1)
            histogram.buckets[index].count += 1
        histogram.total += len(values)

    def _absorb_top_k(self, normalized: Sequence[str]) -> None:
        top_k = self.top_k
        counts: dict[str, int] = {}
        for value in normalized:
            counts[value] = counts.get(value, 0) + 1
        entries = dict(top_k.entries)
        for value, count in counts.items():
            # A value absent from the tracked entries re-enters with just
            # its delta count (its pre-eviction history is lost) — a
            # space-time-style approximation that still lets a newly hot
            # value displace stale singletons.
            entries[value] = entries.get(value, 0) + count
        top_k.total += len(normalized)
        top_k.distinct = max(top_k.distinct, self.distinct_values)
        top_k.entries = sorted(entries.items(), key=lambda kv: -kv[1])[:top_k.k]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def might_contain(self, value: object) -> bool:
        """Value-level membership test (exact when the exact set is kept)."""
        needle = _normalize(value)
        if self.exact is not None:
            return needle in self.exact
        return self.bloom.might_contain(needle)

    def matches_keyword(self, keyword: str) -> bool:
        """Keyword-level membership: the keyword matches a full value or a token.

        The normalisation removes case, accents are left to the caller, and
        non-alphanumeric characters are dropped, so the keyword
        ``"head of state"`` matches the stored value ``headOfState``.
        """
        needle = _normalize(keyword)
        squeezed = _squeeze(needle)
        for exact_set in (self.exact, self.alias_exact):
            if exact_set is None:
                continue
            for value in exact_set:
                if needle == value or squeezed == _squeeze(value):
                    return True
                if needle in _tokens(value) or squeezed in _tokens(value):
                    return True
        if self.exact is not None and self.alias_exact is not None:
            return False
        if (self.bloom.might_contain(needle) or self.bloom.might_contain(squeezed)
                or self.alias_bloom.might_contain(needle)
                or self.alias_bloom.might_contain(squeezed)):
            return True
        return (self.token_bloom.might_contain(needle)
                or self.token_bloom.might_contain(squeezed))

    def matching_values(self, keyword: str, limit: int = 5) -> list[str]:
        """Concrete stored values matching ``keyword`` (exact sets only)."""
        if self.exact is None:
            return []
        needle = _normalize(keyword)
        squeezed = _squeeze(needle)
        matches = []
        for value in sorted(self.exact):
            if needle == value or squeezed == _squeeze(value) or needle in _tokens(value):
                matches.append(value)
                if len(matches) >= limit:
                    break
        return matches

    def overlap_estimate(self, other: "ValueSetSummary", sample_limit: int = 200) -> float:
        """Estimated fraction of this set's values present in ``other``.

        Uses the exact sample when available (probing the other side's
        Bloom filter), which is how cross-source join candidates are
        detected when building the combined digest graph.
        """
        if self.exact:
            sample = list(self.exact)[:sample_limit]
            if not sample:
                return 0.0
            hits = sum(1 for value in sample if other.might_contain(value))
            return hits / len(sample)
        # Without an exact sample, fall back to a coarse histogram overlap.
        if self.numeric and other.numeric and self.histogram and other.histogram:
            if self.histogram.total == 0:
                return 0.0
            overlap = self.histogram.estimate_range(other.histogram.low, other.histogram.high)
            return overlap / self.histogram.total
        return 0.0

    # ------------------------------------------------------------------
    def selectivity(self, value: object) -> float:
        """Selectivity estimate of an equality predicate on ``value``."""
        if self.total_values == 0:
            return 0.0
        if not self.might_contain(value):
            return 0.0
        return max(self.top_k.estimate_equality_selectivity(value), 1.0 / self.total_values)

    def range_selectivity(self, op: str, value: float) -> Optional[float]:
        """Selectivity of ``position <op> value`` from the histogram.

        ``None`` when the position is not numeric (the caller falls back
        to a default guess); supported operators: ``<  <=  >  >=``.
        """
        if not self.numeric or self.histogram is None:
            return None
        if op in ("<", "<="):
            return self.histogram.estimate_selectivity(None, value)
        if op in (">", ">="):
            return self.histogram.estimate_selectivity(value, None)
        return None

    def stats(self) -> ValueSetStats:
        """Size and precision statistics of the summary."""
        bytes_used = (self.bloom.size_in_bytes() + self.token_bloom.size_in_bytes()
                      + self.alias_bloom.size_in_bytes())
        if self.histogram is not None:
            bytes_used += self.histogram.size_in_bytes()
        if self.exact is not None:
            bytes_used += sum(len(v) for v in self.exact)
        return ValueSetStats(
            total_values=self.total_values,
            distinct_values=self.distinct_values,
            numeric=self.numeric,
            exact_kept=self.exact is not None,
            bytes_used=bytes_used,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ValueSetSummary(distinct={self.distinct_values}, "
                f"numeric={self.numeric}, exact={self.exact is not None})")


def _normalize(value: object) -> str:
    return str(value).strip().lower()


def _squeeze(value: str) -> str:
    return "".join(_WORD_RE.findall(value)).lower()


def _tokens(value: str) -> set[str]:
    out: set[str] = set()
    for token in _WORD_RE.findall(value):
        out.add(token.lower())
    # camelCase / PascalCase splitting so "headOfState" yields head/of/state.
    for token in re.findall(r"[A-Za-z][a-z]+|[A-Z]+(?![a-z])|\d+", str(value)):
        out.add(token.lower())
    return out
