"""Observability: structured spans, a metrics registry, EXPLAIN ANALYZE.

This package is the mediator's permanent instrumentation seam:

* :mod:`repro.obs.spans` — nested spans with monotonic timings,
  propagated via contextvars through the service, planner, executor and
  the thread pools, exportable as JSON or a flame-style text tree;
* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms (p50/p95/p99) with Prometheus-text and JSON
  exporters, plus the process-global default registry the locks, pools
  and source wrappers record into;
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE reports merging planner
  costs, executed-step observations and span timings.

It depends only on the standard library, so every other ``repro``
package (including :mod:`repro.locks`) may import it without cycles.
"""

from repro.obs.explain import ExplainReport, ExplainStep, explain_analyze
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)
from repro.obs.spans import (
    Span,
    SpanTracer,
    attach,
    current_span,
    detach,
    span,
    span_under,
    trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "ExplainReport",
    "ExplainStep",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "attach",
    "current_span",
    "detach",
    "explain_analyze",
    "get_registry",
    "reset_registry",
    "set_registry",
    "span",
    "span_under",
    "trace",
]
