"""EXPLAIN ANALYZE: merge planned costs with observed execution reality.

The planner predicts (cardinality estimates, modelled costs, stage
layout), the executor records what actually happened
(:class:`~repro.core.results.SubQueryCall` per dispatch,
:class:`~repro.core.results.StepObservation` per step, a span tree when
tracing is on).  :func:`explain_analyze` folds the three into one
per-step plan-vs-reality report — the mediator's equivalent of a
database's ``EXPLAIN ANALYZE``.

Entry points: :meth:`repro.core.instance.MixedInstance.explain_analyze`
(execute a query and report) and :meth:`repro.service.QueryTicket
.explain_analyze` (report on a served query, queue wait included).

This module deliberately imports nothing from :mod:`repro.core`: it
reads the trace duck-typed, so the core result types need no knowledge
of the report format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ExplainStep:
    """Plan-vs-reality line for one executed plan step."""

    atom: str
    mode: str  # "materialize" | "bind"
    cost: float
    #: Planner's estimate: total rows for materialize steps, rows per
    #: input binding for bind steps.
    estimated_rows: float
    actual_rows: int
    bindings: int
    q_error: float
    calls: int
    batched_calls: int
    rows_fetched: int
    seconds: float
    replanned_after: bool = False
    #: Degradation reason of this step's worst call ("stale_cache" /
    #: "partial"), or None when every call answered fresh rows.
    degraded: Optional[str] = None


@dataclass
class ExplainReport:
    """The merged report; :meth:`render` produces the human-readable text."""

    query: str
    steps: list[ExplainStep] = field(default_factory=list)
    plan_text: str = ""
    plan_cached: bool = False
    rows: int = 0
    total_seconds: float = 0.0
    #: Phase timings from the span tree (None when tracing was off).
    queue_seconds: Optional[float] = None
    plan_seconds: Optional[float] = None
    execute_seconds: Optional[float] = None
    cache_hits: int = 0
    cache_misses: int = 0
    sieved_bindings: int = 0
    replans: int = 0
    #: MQO sharing: probes answered by another in-flight query's
    #: evaluation / bindings that rode another query's fused call.
    shared_subqueries: int = 0
    fused_probes: int = 0
    #: True when at least one call served stale or partial rows because
    #: its source was down; ``degraded_atoms`` lists the affected
    #: ``(atom, source_uri, reason)`` triples.
    degraded: bool = False
    degraded_atoms: list = field(default_factory=list)
    #: The backing :class:`~repro.obs.spans.SpanTracer` (None when off).
    span_tree: Optional[object] = None

    # ------------------------------------------------------------------
    def render(self, include_plan: bool = True,
               include_spans: bool = False) -> str:
        """The report as fixed-width text (demos, logs, notebooks)."""
        lines = [f"EXPLAIN ANALYZE  {self.query}  "
                 f"({self.rows} row(s), {self.total_seconds * 1000.0:.2f} ms)"]
        header = (f"  {'step':<22} {'mode':<12} {'cost':>8} {'est.rows':>9} "
                  f"{'actual':>7} {'q-err':>6} {'calls':>5} {'rows':>7} "
                  f"{'time':>9}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for step in self.steps:
            estimate = (f"{step.estimated_rows:.0f}/bnd" if step.mode == "bind"
                        else f"{step.estimated_rows:.0f}")
            marks = []
            if step.batched_calls:
                marks.append("batched")
            if step.replanned_after:
                marks.append("replanned tail")
            if step.degraded:
                marks.append(f"DEGRADED: {step.degraded}")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"  {step.atom:<22} {step.mode:<12} {step.cost:>8.1f} "
                f"{estimate:>9} {step.actual_rows:>7} {step.q_error:>6.1f} "
                f"{step.calls:>5} {step.rows_fetched:>7} "
                f"{step.seconds * 1000.0:>7.2f}ms{suffix}")
        timing = []
        if self.queue_seconds is not None:
            timing.append(f"queue {self.queue_seconds * 1000.0:.2f} ms")
        if self.plan_seconds is not None:
            timing.append(f"plan {self.plan_seconds * 1000.0:.2f} ms")
        if self.execute_seconds is not None:
            timing.append(f"execute {self.execute_seconds * 1000.0:.2f} ms")
        timing.append(f"trace total {self.total_seconds * 1000.0:.2f} ms")
        lines.append("  timing: " + " | ".join(timing))
        if self.degraded:
            detail = ", ".join(f"{atom}@{source} ({reason})"
                               for atom, source, reason in self.degraded_atoms)
            lines.append(f"  DEGRADED result — sources down past their retry "
                         f"budget: {detail}")
        lines.append(
            f"  cache: {self.cache_hits} hit(s) / {self.cache_misses} "
            f"miss(es) · sieve dropped {self.sieved_bindings} binding(s) · "
            f"replans {self.replans} · plan "
            + ("cached" if self.plan_cached else "built"))
        if self.shared_subqueries or self.fused_probes:
            lines.append(
                f"  mqo: {self.shared_subqueries} shared sub-query(ies) · "
                f"{self.fused_probes} fused probe(s)")
        if include_plan and self.plan_text:
            lines.append("  plan:")
            lines.extend("    " + line for line in self.plan_text.splitlines())
        if include_spans and self.span_tree is not None:
            lines.append("  spans:")
            lines.extend("    " + line
                         for line in self.span_tree.render().splitlines())
        return "\n".join(lines)

    def step(self, atom: str) -> Optional[ExplainStep]:
        """The first step executing ``atom`` (display name), or None."""
        for step in self.steps:
            if step.atom == atom:
                return step
        return None

    def __str__(self) -> str:
        return self.render()


def explain_analyze(result) -> ExplainReport:
    """Build the report from a :class:`~repro.core.results.MixedResult`.

    ``result.trace`` must be present (every executor execution attaches
    one).  Span-derived phase timings are filled in when the execution
    was traced (``PlannerOptions.tracing`` / ``ServiceConfig.tracing``).
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        raise ValueError("the result carries no execution trace to analyze")
    steps: list[ExplainStep] = []
    for observation in trace.steps:
        key = getattr(observation, "atom_key", 0)
        calls = [c for c in trace.calls
                 if (c.atom_key == key if key else c.atom == observation.atom)]
        steps.append(ExplainStep(
            atom=observation.atom,
            mode=observation.mode,
            cost=observation.cost,
            estimated_rows=observation.estimate,
            actual_rows=observation.actual_rows,
            bindings=observation.bindings,
            q_error=observation.q_error(),
            calls=len(calls),
            batched_calls=sum(1 for c in calls if c.batched),
            rows_fetched=sum(c.rows_out for c in calls),
            seconds=sum(c.seconds for c in calls),
            replanned_after=observation.replanned_after,
            degraded=next((c.degraded for c in calls
                           if getattr(c, "degraded", None)), None),
        ))
    spans = getattr(trace, "spans", None)
    queue_seconds = _span_total(spans, "queue")
    plan_seconds = _span_total(spans, "plan")
    replan_seconds = _span_total(spans, "replan")
    if plan_seconds is not None and replan_seconds is not None:
        plan_seconds += replan_seconds
    return ExplainReport(
        query=_query_name(result),
        steps=steps,
        plan_text=trace.plan_text,
        plan_cached=trace.plan_cached,
        rows=len(result.rows),
        total_seconds=trace.total_seconds,
        queue_seconds=queue_seconds,
        plan_seconds=plan_seconds,
        execute_seconds=_span_total(spans, "execute"),
        cache_hits=trace.cache_hits,
        cache_misses=trace.cache_misses,
        sieved_bindings=trace.sieved_bindings,
        replans=trace.replans,
        shared_subqueries=getattr(trace, "shared_subqueries", 0),
        fused_probes=getattr(trace, "fused_probes", 0),
        degraded=getattr(trace, "degraded", False),
        degraded_atoms=list(getattr(trace, "degraded_atoms", ())),
        span_tree=spans,
    )


def _span_total(spans, name: str) -> Optional[float]:
    if spans is None:
        return None
    matching = spans.find(name)
    if not matching:
        return None
    return sum(span.seconds for span in matching)


def _query_name(result) -> str:
    trace = result.trace
    if trace.atom_order:
        return "query(" + " -> ".join(trace.atom_order) + ")"
    return "query"
