"""A thread-safe metrics registry: counters, gauges, histograms.

Instruments are identified by ``(name, labels)`` — repeated
``registry.counter("source_calls_total", source=uri)`` calls return the
*same* counter, so call sites cheaply re-resolve their instruments (and
long-lived objects cache the handle keyed on the registry's identity).

Histograms use **fixed buckets** (Prometheus-style, cumulative on
export) and derive p50/p95/p99 by linear interpolation inside the bucket
the quantile falls in; the maximum observed value bounds the overflow
bucket so tail quantiles stay finite.

The process-global default registry (:func:`get_registry`) is what the
lock, pool and source-wrapper instrumentation records into; a
:class:`~repro.service.MediatorService` uses it too unless handed its
own registry.  Exporters: :meth:`MetricsRegistry.snapshot` (plain dict),
:meth:`MetricsRegistry.to_json`, and
:meth:`MetricsRegistry.render_prometheus` (text exposition format).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Callable, Optional, Sequence

#: Default histogram buckets (seconds): tuned for sub-query latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Instrument key: (name, tuple of sorted (label, value) pairs).
InstrumentKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> InstrumentKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat(key: InstrumentKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, in-flight, ...)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``observe`` is O(log buckets); ``quantile`` walks the buckets and
    interpolates linearly inside the one the target rank falls in, with
    the observed maximum bounding the overflow bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_counts", "_count", "_sum",
                 "_max", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (0 <= q <= 1) of the observations."""
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            target = q * count
            cumulative = 0.0
            for index, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= target:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (self.bounds[index] if index < len(self.bounds)
                             else max(self._max, lower))
                    upper = max(upper, lower)
                    fraction = (target - cumulative) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
                cumulative += bucket_count
            return self._max

    def summary(self) -> dict[str, float]:
        """count / sum / mean / p50 / p95 / p99 / max in one dictionary."""
        with self._lock:
            count, total, maximum = self._count, self._sum, self._max
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
            "max": round(maximum, 6),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ``inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out


class MetricsRegistry:
    """Get-or-create instrument store plus snapshot/export APIs."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[InstrumentKey, object] = {}
        self._callbacks: dict[InstrumentKey, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, object], **kwargs):
        key = _key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {_flat(key)!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}")
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Sequence[float] | None = None,
                  **labels) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    def register_callback(self, name: str, callback: Callable[[], float],
                          **labels) -> None:
        """Register (or replace) a gauge computed lazily at snapshot time.

        Used to surface counters owned elsewhere (e.g. the LRU caches'
        :class:`~repro.cache.lru.CacheStats`) without double accounting.
        """
        with self._lock:
            self._callbacks[_key(name, labels)] = callback

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> Optional[object]:
        """Current value of one instrument/callback (None when absent)."""
        key = _key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            callback = self._callbacks.get(key)
        if instrument is not None:
            return (instrument.summary() if isinstance(instrument, Histogram)
                    else instrument.value)
        if callback is not None:
            return callback()
        return None

    def series(self, name: str) -> dict[str, object]:
        """Every labelled value of one metric name, keyed by flat label."""
        with self._lock:
            instruments = [(k, v) for k, v in self._instruments.items()
                           if k[0] == name]
            callbacks = [(k, v) for k, v in self._callbacks.items()
                         if k[0] == name]
        out: dict[str, object] = {}
        for key, instrument in instruments:
            out[_flat(key)] = (instrument.summary()
                               if isinstance(instrument, Histogram)
                               else instrument.value)
        for key, callback in callbacks:
            out[_flat(key)] = callback()
        return out

    def snapshot(self) -> dict[str, object]:
        """Every instrument's current value, keyed ``name{label=value}``.

        Counters and gauges map to numbers, histograms to their summary
        dictionaries, callbacks to whatever they return.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
            callbacks = sorted(self._callbacks.items())
        out: dict[str, object] = {}
        for key, instrument in instruments:
            out[_flat(key)] = (instrument.summary()
                               if isinstance(instrument, Histogram)
                               else instrument.value)
        for key, callback in callbacks:
            try:
                out[_flat(key)] = callback()
            except Exception:  # pragma: no cover - defensive
                out[_flat(key)] = None
        return out

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            instruments = sorted(self._instruments.items())
            callbacks = sorted(self._callbacks.items())
        lines: list[str] = []
        typed: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for key, instrument in instruments:
            name, labels = key
            if isinstance(instrument, Histogram):
                type_line(name, "histogram")
                for bound, cumulative in instrument.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else _num(bound)
                    lines.append(f"{name}_bucket"
                                 f"{_label_block(labels + (('le', le),))} "
                                 f"{cumulative}")
                lines.append(f"{name}_sum{_label_block(labels)} "
                             f"{_num(instrument.sum)}")
                lines.append(f"{name}_count{_label_block(labels)} "
                             f"{instrument.count}")
            else:
                type_line(name, instrument.kind)
                lines.append(f"{name}{_label_block(labels)} "
                             f"{_num(instrument.value)}")
        for key, callback in callbacks:
            name, labels = key
            type_line(name, "gauge")
            try:
                value = callback()
            except Exception:  # pragma: no cover - defensive
                continue
            lines.append(f"{name}{_label_block(labels)} {_num(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _label_block(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    escaped = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return f"{{{escaped}}}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _num(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


# ---------------------------------------------------------------------------
# The process-global default registry
# ---------------------------------------------------------------------------

_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _default
    with _default_lock:
        previous, _default = _default, registry
    return previous


def reset_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh one (test isolation).

    Long-lived objects that cache instrument handles key the cache on
    the registry's identity, so they pick the fresh registry up on their
    next dispatch.
    """
    global _default
    with _default_lock:
        _default = MetricsRegistry()
    return _default
