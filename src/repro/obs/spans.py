"""Structured spans: nested, monotonic timings propagated via contextvars.

A :class:`SpanTracer` collects the spans of one traced unit of work
(typically one query through the mediator service).  Spans form a tree:
the service opens a ``query:*`` root at submission, the executor nests
``execute`` under it, the planner nests ``plan``, each dispatch stage and
each source call nests deeper still.  The *current* span travels in a
:data:`contextvars.ContextVar`, and :class:`repro.engine.parallel
.WorkPool` copies the submitting thread's context into its workers, so
parentage survives parallel dispatch across threads.

The instrumentation is written to cost nothing when no trace is active:
:func:`span` reads one context variable and yields ``None`` when there
is no current span, so modules can sprinkle ``with span(...)`` freely —
spans are only allocated inside an active trace.

All timings use :func:`time.perf_counter` (monotonic, sub-microsecond),
the same clock the executor stamps :class:`~repro.core.results
.ExecutionTrace` with, so span totals and trace totals reconcile.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import logging
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

logger = logging.getLogger("repro.obs.spans")

#: The span the calling context is currently inside (None = not tracing).
_CURRENT: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None)


class Span:
    """One timed node of a span tree.

    Spans are created through :class:`SpanTracer.start` (or the
    :func:`span` / :func:`trace` context managers) and closed with
    :meth:`end`; ``end`` is idempotent, so a span shared across threads
    (e.g. the service's queue span, started at submit and ended at
    dequeue) may be closed defensively from several places.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "started_at",
                 "ended_at", "attributes")

    def __init__(self, tracer: "SpanTracer", name: str, span_id: int,
                 parent_id: Optional[int], attributes: dict):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.started_at = time.perf_counter()
        self.ended_at: Optional[float] = None

    @property
    def seconds(self) -> float:
        """Duration so far (final once the span has ended)."""
        end = self.ended_at if self.ended_at is not None else time.perf_counter()
        return end - self.started_at

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def end(self, **attributes) -> "Span":
        """Close the span (idempotent); extra attributes may ride along."""
        if attributes:
            self.attributes.update(attributes)
        if self.ended_at is None:
            self.ended_at = time.perf_counter()
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug("span %s ended after %.3f ms %s",
                             self.name, self.seconds * 1000.0,
                             self.attributes or "")
        return self

    def to_dict(self, origin: float | None = None) -> dict:
        """JSON-friendly representation (times relative to ``origin``)."""
        origin = origin if origin is not None else self.started_at
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round((self.started_at - origin) * 1000.0, 4),
            "duration_ms": round(self.seconds * 1000.0, 4),
            "ended": self.ended_at is not None,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Span(name={self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, seconds={self.seconds:.6f})")


class SpanTracer:
    """Collects the span tree of one traced unit of work (thread-safe)."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    def start(self, name: str, parent: Span | None = None, **attributes) -> Span:
        """Open a new span (a root when ``parent`` is None)."""
        span_ = Span(self, name, next(self._ids),
                     parent.span_id if parent is not None else None,
                     attributes)
        with self._lock:
            self.spans.append(span_)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("span %s started (parent=%s)", name,
                         parent.name if parent is not None else None)
        return span_

    def root(self) -> Optional[Span]:
        """The first root span (None while the tracer is empty)."""
        with self._lock:
            for span_ in self.spans:
                if span_.parent_id is None:
                    return span_
        return None

    def find(self, name: str) -> list[Span]:
        """Every span with the given name, in creation order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total_seconds(self) -> float:
        """Duration of the root span (0.0 while the tracer is empty)."""
        root = self.root()
        return root.seconds if root is not None else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """The span tree as JSON-friendly dictionaries."""
        with self._lock:
            spans = list(self.spans)
        origin = spans[0].started_at if spans else 0.0
        return [span_.to_dict(origin) for span_ in spans]

    def to_json(self, indent: int | None = None) -> str:
        """The span tree as a JSON document."""
        return json.dumps({"trace": self.name, "spans": self.to_dicts()},
                          indent=indent, default=str)

    def render(self, max_attributes: int = 4) -> str:
        """A flame-style text tree: indentation, duration, % of root."""
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return f"(empty trace {self.name!r})"
        children: dict[Optional[int], list[Span]] = {}
        for span_ in spans:
            children.setdefault(span_.parent_id, []).append(span_)
        roots = children.get(None, [])
        total = max((root.seconds for root in roots), default=0.0) or 1e-9
        lines: list[str] = []

        def walk(span_: Span, depth: int) -> None:
            share = 100.0 * span_.seconds / total
            bar = "#" * max(1, min(10, int(round(share / 10.0))))
            attrs = " ".join(
                f"{key}={_short(value)}"
                for key, value in itertools.islice(span_.attributes.items(),
                                                   max_attributes))
            label = "  " * depth + span_.name
            lines.append(f"{label:<44} {span_.seconds * 1000.0:9.2f} ms "
                         f"{share:5.1f}%  {bar:<10}"
                         + (f"  {attrs}" if attrs else ""))
            for child in children.get(span_.span_id, []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SpanTracer(name={self.name!r}, spans={len(self)})"


def _short(value: object, limit: int = 32) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

def current_span() -> Optional[Span]:
    """The span the calling context is inside, or None when not tracing."""
    return _CURRENT.get()


def attach(span_: Span) -> contextvars.Token:
    """Make ``span_`` the current span; returns the token for :func:`detach`.

    For code that cannot use the :func:`span` context manager because the
    span starts and ends in different threads (the mediator service's
    per-ticket root span).
    """
    return _CURRENT.set(span_)


def detach(token: contextvars.Token) -> None:
    """Restore the current span saved by :func:`attach`."""
    _CURRENT.reset(token)


@contextmanager
def trace(name: str, **attributes) -> Iterator[Span]:
    """Start a fresh tracer with one root span and make it current."""
    tracer = SpanTracer(name)
    root = tracer.start(name, **attributes)
    token = _CURRENT.set(root)
    try:
        yield root
    finally:
        _CURRENT.reset(token)
        root.end()


@contextmanager
def span(name: str, **attributes) -> Iterator[Optional[Span]]:
    """Open a child of the current span; a no-op outside any trace.

    Yields the new :class:`Span`, or ``None`` when no trace is active —
    callers guard attribute updates with ``if sp is not None``.
    """
    parent = _CURRENT.get()
    if parent is None:
        yield None
        return
    child = parent.tracer.start(name, parent=parent, **attributes)
    token = _CURRENT.set(child)
    try:
        yield child
    finally:
        _CURRENT.reset(token)
        child.end()


@contextmanager
def span_under(parent: Optional[Span], name: str,
               **attributes) -> Iterator[Optional[Span]]:
    """Like :func:`span` but under an explicit parent.

    Used where the logical parent was captured earlier than the call runs
    (e.g. a bind join's fetches execute while a *later* pipeline stage is
    the current span); a no-op when ``parent`` is None.
    """
    if parent is None:
        yield None
        return
    child = parent.tracer.start(name, parent=parent, **attributes)
    token = _CURRENT.set(child)
    try:
        yield child
    finally:
        _CURRENT.reset(token)
        child.end()
