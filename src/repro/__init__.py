"""repro — a reproduction of TATOOINE (VLDB 2016).

"Mixed-instance querying: a lightweight integration architecture for data
journalism" describes TATOOINE, a mediator that evaluates *Conjunctive
Mixed Queries* over a mixed instance: a custom RDF "glue" graph plus a set
of heterogeneous data sources (Solr-like full-text stores, relational
databases, RDF sources), and offers keyword search over source digests.

The top-level package re-exports the most commonly used entry points; the
subsystems live in dedicated sub-packages:

``repro.core``
    mixed instances, CMQs, planner and executor (the paper's contribution);
``repro.rdf`` / ``repro.relational`` / ``repro.fulltext`` / ``repro.json``
    the data-source substrates;
``repro.engine``
    the iterator-based execution engine;
``repro.digest``
    source digests (Bloom filters, histograms, dataguides, RDF summaries)
    and the keyword-based query engine;
``repro.obs``
    observability: structured spans, the metrics registry, EXPLAIN ANALYZE;
``repro.analytics``
    PMI vocabulary analytics and tag clouds (Figure 3);
``repro.datasets``
    deterministic synthetic datasets standing in for the Le Monde corpus;
``repro.baselines``
    warehouse and naive-mediator baselines used by the ablation benches.
"""

import logging

# Library logging convention: everything logs under the "repro.*"
# hierarchy and the library itself never configures handlers.
logging.getLogger("repro").addHandler(logging.NullHandler())

from repro.core.cmq import CMQBuilder, ConjunctiveMixedQuery, GLUE_SOURCE, parse_cmq
from repro.core.instance import MixedInstance
from repro.core.planner import PlannerOptions
from repro.core.results import MixedResult
from repro.core.sources import (
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SQLQuery,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CMQBuilder",
    "ConjunctiveMixedQuery",
    "GLUE_SOURCE",
    "parse_cmq",
    "MixedInstance",
    "PlannerOptions",
    "MixedResult",
    "FullTextQuery",
    "FullTextSource",
    "JSONQuery",
    "JSONSource",
    "RDFQuery",
    "RDFSource",
    "RelationalSource",
    "SQLQuery",
    "ReproError",
    "__version__",
]
