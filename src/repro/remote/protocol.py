"""The length-prefixed JSON wire protocol of the remote federation layer.

A message is one frame::

    +----------------+----------------------------------+
    | 4 bytes  !I    | UTF-8 JSON payload (length bytes)|
    +----------------+----------------------------------+

Requests are JSON objects ``{"op": ..., ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": {"type", "message"}}``.

Binding rows and sub-queries travel through the codecs below.  Values
that plain JSON cannot represent (tuples, dates, datetimes, and dicts
whose keys collide with the tag) are wrapped in a one-key tag object
``{"$": kind, "v": payload}``; everything else passes through verbatim,
so the common case (strings and numbers) costs nothing.
"""

from __future__ import annotations

import datetime
import json
import socket
import struct
from typing import Optional

from repro.core.sources import (
    FullTextQuery,
    JSONQuery,
    RDFQuery,
    Row,
    SourceQuery,
    SQLQuery,
)
from repro.errors import RemoteProtocolError
from repro.json.parser import parse_pattern
from repro.rdf.bgp import BGPQuery
from repro.rdf.terms import Literal, URI, Variable

#: Upper bound on one frame; a peer announcing more is malformed.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct("!I")

#: The tag key of the value codec.
_TAG = "$"


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------

def encode_value(value: object) -> object:
    """JSON-representable form of one mediator value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value  # json round-trips inf/nan via its own literals
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {str(k): encode_value(v) for k, v in value.items()}
        if _TAG in encoded:
            return {_TAG: "dict", "v": encoded}
        return encoded
    if isinstance(value, datetime.datetime):
        return {_TAG: "datetime", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {_TAG: "date", "v": value.isoformat()}
    raise RemoteProtocolError(
        f"value of type {type(value).__name__} is not wire-serialisable")


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in value.items()}
        if tag == "tuple":
            return tuple(decode_value(item) for item in value["v"])
        if tag == "dict":
            return {k: decode_value(v) for k, v in value["v"].items()}
        if tag == "datetime":
            return datetime.datetime.fromisoformat(value["v"])
        if tag == "date":
            return datetime.date.fromisoformat(value["v"])
        raise RemoteProtocolError(f"unknown value tag {tag!r}")
    return value


def encode_row(row: Row) -> dict:
    return {name: encode_value(value) for name, value in row.items()}


def decode_row(row: dict) -> Row:
    if not isinstance(row, dict):
        raise RemoteProtocolError("a binding row must decode from an object")
    return {name: decode_value(value) for name, value in row.items()}


def encode_estimate(value: float) -> object:
    """Estimates may be ``inf``, which strict JSON peers cannot carry."""
    if value != value or value == float("inf"):
        return None
    return value


def decode_estimate(value: object) -> float:
    if value is None:
        return float("inf")
    return float(value)


# ---------------------------------------------------------------------------
# Sub-query codec
# ---------------------------------------------------------------------------

def _encode_term(term: object) -> dict:
    if isinstance(term, Variable):
        return {_TAG: "var", "v": term.name}
    if isinstance(term, URI):
        return {_TAG: "uri", "v": term.value}
    if isinstance(term, Literal):
        encoded: dict = {_TAG: "lit", "v": term.value}
        if term.datatype is not None:
            encoded["dt"] = term.datatype
        if term.language is not None:
            encoded["lang"] = term.language
        return encoded
    raise RemoteProtocolError(
        f"RDF term of type {type(term).__name__} is not wire-serialisable")


def _decode_term(term: dict):
    tag = term.get(_TAG) if isinstance(term, dict) else None
    if tag == "var":
        return Variable(term["v"])
    if tag == "uri":
        return URI(term["v"])
    if tag == "lit":
        return Literal(term["v"], datatype=term.get("dt"),
                       language=term.get("lang"))
    raise RemoteProtocolError(f"unknown RDF term encoding {term!r}")


def encode_query(query: SourceQuery) -> dict:
    """Wire form of one per-model sub-query."""
    if isinstance(query, SQLQuery):
        return {"kind": "sql", "sql": query.sql,
                "output_columns": list(query.output_columns)}
    if isinstance(query, FullTextQuery):
        return {"kind": "fulltext", "template": query.query_template,
                "fields": [[v, p] for v, p in query.output_fields],
                "limit": query.limit, "sort_by": query.sort_by}
    if isinstance(query, JSONQuery):
        return {"kind": "json", "pattern": query.pattern.to_text(),
                "limit": query.limit}
    if isinstance(query, RDFQuery):
        bgp = query.bgp
        return {"kind": "rdf", "name": bgp.name,
                "head": [v.name for v in bgp.head],
                "patterns": [[_encode_term(t) for t in pattern]
                             for pattern in bgp.patterns]}
    raise RemoteProtocolError(
        f"sub-query of type {type(query).__name__} is not wire-serialisable")


def decode_query(payload: dict) -> SourceQuery:
    """Inverse of :func:`encode_query`."""
    if not isinstance(payload, dict):
        raise RemoteProtocolError("a sub-query must decode from an object")
    kind = payload.get("kind")
    if kind == "sql":
        return SQLQuery(sql=payload["sql"],
                        output_columns=tuple(payload.get("output_columns") or ()))
    if kind == "fulltext":
        return FullTextQuery(
            query_template=payload["template"],
            output_fields=tuple((v, p) for v, p in payload.get("fields") or ()),
            limit=payload.get("limit"), sort_by=payload.get("sort_by"))
    if kind == "json":
        return JSONQuery(pattern=parse_pattern(payload["pattern"]),
                         limit=payload.get("limit"))
    if kind == "rdf":
        patterns = tuple(
            tuple(_decode_term(t) for t in pattern)
            for pattern in payload.get("patterns") or ())
        bgp = BGPQuery.create(head=[Variable(n) for n in payload.get("head") or ()],
                              patterns=patterns,
                              name=payload.get("name") or "q")
        return RDFQuery(bgp=bgp)
    raise RemoteProtocolError(f"unknown sub-query kind {kind!r}")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def dump_message(payload: dict) -> bytes:
    """One complete frame (length prefix included) for ``payload``."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"message of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "frame bound")
    return _LENGTH.pack(len(body)) + body


def load_message(body: bytes) -> dict:
    """Decode one frame body; raises on anything but a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RemoteProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise RemoteProtocolError("a protocol message must be a JSON object")
    return payload


def roundtrip(payload: dict) -> dict:
    """Serialise and re-parse ``payload`` (the in-process transport uses
    this so loopback traffic exercises the same fidelity limits as TCP)."""
    return load_message(dump_message(payload)[_LENGTH.size:])


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(dump_message(payload))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF before a new frame starts."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")
    body = _recv_exact(sock, length, eof_ok=False)
    assert body is not None
    return load_message(body)


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> Optional[bytes]:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionResetError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
