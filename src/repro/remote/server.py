"""Reference servers exposing a :class:`DataSource` over the wire protocol.

:class:`RemoteSourceHandler` is transport-agnostic — one request payload
in, one response payload out — so the in-process loopback transport and
the TCP server share every line of the serving logic.  The supported
operations mirror the :class:`~repro.core.sources.DataSource` protocol:

``hello``
    Source metadata (model, name, uri, size, description, version).
``version``
    Current store version (``null`` for unversioned sources).
``pin``
    Pin a server-side snapshot; returns its version.  Subsequent
    ``execute`` / ``execute_batch`` requests carrying that version are
    answered from the snapshot, so a remote plan observes one consistent
    state even while the live store is written.
``execute`` / ``execute_batch``
    Evaluate one sub-query (for one binding, or a whole batch).
``estimate``
    The wrapper's cardinality estimate (``null`` encodes ``inf``).

Errors are reported as ``{"ok": false, "error": {"type", "message"}}``;
the client re-raises registered :class:`~repro.errors.ReproError`
subclasses by name.
"""

from __future__ import annotations

import logging
import socketserver
import threading
from typing import Optional

from repro.core.sources import DataSource
from repro.errors import RemoteProtocolError, ReproError
from repro.remote import protocol

logger = logging.getLogger(__name__)

#: Server-side snapshots kept per source (latest versions win).
MAX_PINNED_SNAPSHOTS = 8


class RemoteSourceHandler:
    """Serve one :class:`DataSource` to any transport.

    Thread-safe: the TCP server dispatches concurrent connections into
    one shared handler.  Pinned snapshots are memoised per version so
    every remote query pinning an unchanged source shares one wrapper.
    """

    def __init__(self, source: DataSource):
        self.source = source
        self._lock = threading.Lock()
        self._pinned: dict[int, DataSource] = {}
        self._served = 0

    @property
    def requests_served(self) -> int:
        with self._lock:
            return self._served

    def handle(self, request: dict) -> dict:
        """Answer one request payload; never raises."""
        with self._lock:
            self._served += 1
        try:
            return self._dispatch(request)
        except ReproError as exc:
            return {"ok": False,
                    "error": {"type": type(exc).__name__, "message": str(exc)}}
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("remote handler for %s failed", self.source.uri)
            return {"ok": False,
                    "error": {"type": type(exc).__name__, "message": str(exc)}}

    # -- operations --------------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            source = self.source
            return {"ok": True, "model": source.model, "name": source.name,
                    "uri": source.uri, "size": source.size(),
                    "description": source.description,
                    "version": source.version()}
        if op == "version":
            return {"ok": True, "version": self.source.version()}
        if op == "pin":
            return {"ok": True, "version": self._pin()}
        if op == "execute":
            target = self._target(request.get("version"))
            query = protocol.decode_query(request.get("query"))
            bindings = protocol.decode_row(request.get("bindings") or {})
            rows = target.execute(query, bindings)
            return {"ok": True, "version": target.pinned_at,
                    "rows": [protocol.encode_row(row) for row in rows]}
        if op == "execute_batch":
            target = self._target(request.get("version"))
            query = protocol.decode_query(request.get("query"))
            batch = [protocol.decode_row(b)
                     for b in request.get("bindings_batch") or []]
            groups = target.execute_batch(query, batch)
            return {"ok": True, "version": target.pinned_at,
                    "groups": [[protocol.encode_row(row) for row in rows]
                               for rows in groups]}
        if op == "estimate":
            target = self._target(request.get("version"))
            query = protocol.decode_query(request.get("query"))
            bound = set(request.get("bound_variables") or ())
            estimate = target.estimate(query, bound)
            return {"ok": True, "version": target.pinned_at,
                    "estimate": protocol.encode_estimate(estimate)}
        if op == "size":
            return {"ok": True, "size": self.source.size()}
        raise RemoteProtocolError(f"unknown operation {op!r}")

    def _pin(self) -> Optional[int]:
        pinned = self.source.pin()
        version = pinned.pinned_at
        if version is None:
            version = self.source.version()
        if version is None:
            return None
        with self._lock:
            self._pinned[version] = pinned
            while len(self._pinned) > MAX_PINNED_SNAPSHOTS:
                del self._pinned[min(self._pinned)]
        return version

    def _target(self, version: object) -> DataSource:
        """The wrapper serving one execute request.

        A request carrying a pin version is answered from that snapshot;
        an unknown (evicted / never pinned) version falls back to the
        live wrapper — the client detects the mismatch via the response's
        ``version`` and treats it as a retryable protocol error.
        """
        if version is None:
            return self.source
        if not isinstance(version, int):
            raise RemoteProtocolError(
                f"pin version must be an integer, got {type(version).__name__}")
        with self._lock:
            pinned = self._pinned.get(version)
        return pinned if pinned is not None else self.source


class _Connection(socketserver.BaseRequestHandler):
    """One keep-alive client connection: frames in, frames out, EOF ends."""

    def handle(self) -> None:
        handler: RemoteSourceHandler = self.server.source_handler
        while True:
            try:
                request = protocol.recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            except RemoteProtocolError as exc:
                try:
                    protocol.send_frame(self.request, {
                        "ok": False,
                        "error": {"type": "RemoteProtocolError",
                                  "message": str(exc)}})
                except OSError:
                    pass
                return
            if request is None:
                return
            response = handler.handle(request)
            try:
                protocol.send_frame(self.request, response)
            except (ConnectionError, OSError):
                return


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class SourceServer:
    """A TCP server exposing one :class:`DataSource` on ``host:port``.

    ``port=0`` (the default) binds an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.  Usable as a context manager.
    """

    def __init__(self, source: DataSource, host: str = "127.0.0.1",
                 port: int = 0):
        self.handler = RemoteSourceHandler(source)
        self._server = _Server((host, port), _Connection)
        self._server.source_handler = self.handler
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> "SourceServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"source-server-{self.handler.source.name}", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "SourceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
