"""Remote source federation: wire protocol, reference servers, clients.

The paper's mediator federates *network* services (Solr, SQL servers,
SPARQL endpoints); this package makes the repro's in-process stores
remote without changing the mediator protocol:

* :mod:`repro.remote.protocol` — a compact length-prefixed JSON wire
  protocol (framing, value and sub-query codecs);
* :mod:`repro.remote.server` — reference servers exposing any registered
  :class:`~repro.core.sources.DataSource` over that protocol (TCP with
  keep-alive, plus a transport-agnostic in-process handler);
* :mod:`repro.remote.transport` — client transports: pooled TCP
  connections, an in-process loopback, and a *deterministic*
  fault-injection proxy for reproducible chaos tests;
* :mod:`repro.remote.resilience` — per-source call timeouts, retries
  with exponential backoff + jitter, hedged requests, and a
  closed/open/half-open circuit breaker;
* :mod:`repro.remote.client` — :class:`RemoteSource`, the
  :class:`~repro.core.sources.DataSource` wrapper speaking the protocol
  behind ``execute`` / ``execute_batch`` / ``estimate`` / ``version`` /
  ``pin``.
"""

from repro.remote.client import RemoteSource
from repro.remote.resilience import CircuitBreaker, RemoteOptions
from repro.remote.server import RemoteSourceHandler, SourceServer
from repro.remote.transport import (
    FaultyTransport,
    LocalTransport,
    TCPTransport,
    Transport,
)

__all__ = [
    "CircuitBreaker",
    "FaultyTransport",
    "LocalTransport",
    "RemoteOptions",
    "RemoteSource",
    "RemoteSourceHandler",
    "SourceServer",
    "TCPTransport",
    "Transport",
]
