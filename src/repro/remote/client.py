""":class:`RemoteSource` — a :class:`DataSource` speaking the wire protocol.

The wrapper hides the network behind the exact mediator protocol the
in-process wrappers implement (``execute`` / ``execute_batch`` /
``estimate`` / ``version`` / ``pin``), so planner, executor, cache and
service code need no remote-specific branches.  What *is* remote-specific
lives in the resilience layer wrapped around every call:

* a per-call network **timeout** (:attr:`RemoteOptions.timeout`);
* **retries** with exponential backoff + deterministic jitter — calls
  are idempotent reads, so a timed-out call may safely be re-issued;
* **hedged requests**: when a call exceeds the p95 of recent latencies
  (or an explicit ``hedge_delay``), a duplicate is raced against it and
  the first response wins — tail latency without duplicated rows,
  because both legs carry the identical read;
* a per-source **circuit breaker** failing fast while a source is down,
  with half-open probes (:class:`~repro.remote.resilience.CircuitBreaker`);
* **snapshot pinning**: ``pin()`` pins a server-side snapshot and tags
  every subsequent call with its version; a response from any other
  version is rejected as a retryable protocol error.

Failures escape only as typed :class:`~repro.errors.RemoteError`
subclasses, which the executor turns into graceful degradation.
"""

from __future__ import annotations

import concurrent.futures
import random
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

import repro.errors as errors
from repro.core.sources import (
    DataSource,
    Row,
    SourceQuery,
    _instrumented_execute,
    _instrumented_execute_batch,
)
from repro.errors import (
    CircuitOpenError,
    MixedQueryError,
    RemoteError,
    RemoteProtocolError,
    ReproError,
)
from repro.obs import get_registry, span
from repro.remote import protocol
from repro.remote.resilience import CircuitBreaker, RemoteOptions
from repro.remote.transport import Transport

#: Recent latency observations kept per source for p95-derived hedging.
LATENCY_WINDOW = 64


class _SharedState:
    """Call-path state shared by a live wrapper and its pinned clones.

    A pinned clone answers from the same server over the same transport,
    so breaker, latency window, hedge pool and counters must be one per
    *source*, not one per wrapper.
    """

    def __init__(self, uri: str, transport: Transport, options: RemoteOptions,
                 clock: Callable[[], float], seed: int):
        self.transport = transport
        self.options = options
        self.lock = threading.Lock()
        self.rng = random.Random(seed)
        self.latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.hedge_pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self.calls = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        registry = get_registry()
        self.breaker = CircuitBreaker(
            uri, failures=options.breaker_failures,
            reset_after=options.breaker_reset, probes=options.breaker_probes,
            clock=clock,
            on_transition=lambda old, new: registry.counter(
                "remote_breaker_transitions_total",
                source=uri, to=new).inc())

    def pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self.lock:
            if self.hedge_pool is None:
                self.hedge_pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="remote-hedge")
            return self.hedge_pool

    def hedge_delay(self) -> Optional[float]:
        """Seconds before hedging one call, or ``None`` to not hedge."""
        options = self.options
        if options.hedge_delay is not None:
            return options.hedge_delay if options.hedge_delay > 0 else None
        with self.lock:
            if len(self.latencies) < options.hedge_min_samples:
                return None
            ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]

    def jitter(self) -> float:
        with self.lock:
            return self.rng.random()


class RemoteSource(DataSource):
    """A mediator source wrapper answering over a network transport.

    Parameters
    ----------
    transport:
        The client transport (TCP, in-process loopback, or a
        fault-injection proxy around either).
    uri / model / name / size / description:
        Source metadata.  When ``uri`` or ``model`` is omitted the
        wrapper issues a ``hello`` at construction time to learn them
        from the server; pass both to defer all network traffic.
    options:
        Resilience knobs (:class:`RemoteOptions`).
    clock:
        Injectable monotonic clock for the circuit breaker (tests).
    seed:
        Seed of the deterministic backoff jitter.
    """

    model = "remote"

    # The catalog must not dig into this wrapper for digest statistics —
    # estimates come from the remote peer.
    trust_wrapper_estimate = True

    def __init__(self, transport: Transport, uri: str | None = None,
                 model: str | None = None, name: str | None = None,
                 size: int | None = None, description: str = "",
                 options: RemoteOptions | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 seed: int = 0,
                 _shared: Optional[_SharedState] = None):
        self.options = options or RemoteOptions()
        hello: dict = {}
        if _shared is None and (uri is None or model is None):
            hello = transport.request({"op": "hello"},
                                      timeout=self.options.timeout)
            if not hello.get("ok"):
                raise RemoteProtocolError(
                    f"hello failed: {hello.get('error')}")
        uri = uri or hello.get("uri") or "remote://source"
        super().__init__(uri, name=name or hello.get("name"),
                         description=description or hello.get("description", ""))
        self.model = model or hello.get("model") or "remote"
        self._size = size if size is not None else int(hello.get("size") or 0)
        self._shared = _shared or _SharedState(
            uri, transport, self.options, clock, seed)
        self._estimate_memo: dict = {}
        self._estimate_lock = threading.Lock()

    # -- metadata ----------------------------------------------------------

    @property
    def cost_kind(self) -> str:
        """Cost-model kind: network-RTT constants, not local-call ones."""
        return "remote"

    @property
    def breaker(self) -> CircuitBreaker:
        return self._shared.breaker

    @property
    def transport(self) -> Transport:
        return self._shared.transport

    def size(self) -> int:
        return self._size

    def close(self) -> None:
        shared = self._shared
        with shared.lock:
            pool, shared.hedge_pool = shared.hedge_pool, None
        if pool is not None:
            pool.shutdown(wait=False)
        shared.transport.close()

    # -- DataSource protocol ----------------------------------------------

    @_instrumented_execute
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        request = {"op": "execute", "query": protocol.encode_query(query),
                   "bindings": protocol.encode_row(bindings or {})}
        response = self._call(request)
        return [protocol.decode_row(row) for row in response.get("rows") or []]

    @_instrumented_execute_batch
    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        request = {"op": "execute_batch",
                   "query": protocol.encode_query(query),
                   "bindings_batch": [protocol.encode_row(b)
                                      for b in bindings_batch]}
        response = self._call(request)
        groups = [[protocol.decode_row(row) for row in rows]
                  for rows in response.get("groups") or []]
        if len(groups) != len(bindings_batch):
            raise RemoteProtocolError(
                f"{self.uri} answered {len(groups)} groups for "
                f"{len(bindings_batch)} bindings")
        return groups

    def estimate(self, query: SourceQuery,
                 bound_variables: set[str] | None = None) -> float:
        """Remote cardinality estimate; ``inf`` when the source is down.

        Planning must never fail on a source fault — an unreachable
        source simply looks maximally expensive, so the planner pushes
        its atoms late (by which point the breaker may have recovered).
        Estimates are memoised on *pinned* wrappers only, where the
        content is immutable.
        """
        key = None
        if self.pinned_at is not None:
            key = (str(query), frozenset(bound_variables or ()))
            with self._estimate_lock:
                if key in self._estimate_memo:
                    return self._estimate_memo[key]
        try:
            response = self._call({
                "op": "estimate", "query": protocol.encode_query(query),
                "bound_variables": sorted(bound_variables or ())})
        except ReproError:
            return float("inf")
        estimate = protocol.decode_estimate(response.get("estimate"))
        if key is not None:
            with self._estimate_lock:
                self._estimate_memo[key] = estimate
        return estimate

    def version(self) -> Optional[int]:
        """The remote store version; ``None`` while the source is down.

        Never cached on the live wrapper: a stale version paired with
        mutated remote content would let the result cache serve wrong
        rows.  ``None`` keeps the source uncacheable — slower, never
        wrong.
        """
        if self.pinned_at is not None:
            return self.pinned_at
        try:
            response = self._call({"op": "version"})
        except RemoteError:
            return None
        version = response.get("version")
        return version if isinstance(version, int) else None

    def pin(self) -> DataSource:
        """Pin a server-side snapshot and return a wrapper bound to it.

        While the source is unreachable the live wrapper is returned
        instead: the query forgoes snapshot isolation for this source
        (exactly like a wrapper without snapshot support) rather than
        failing admission outright.
        """
        try:
            response = self._call({"op": "pin"})
        except RemoteError:
            return self
        version = response.get("version")
        if not isinstance(version, int):
            return self
        return self._memoized_pin(version, lambda: self._build_pinned(version))

    def _build_pinned(self, version: int) -> "RemoteSource":
        pinned = RemoteSource(
            self._shared.transport, uri=self.uri, model=self.model,
            name=self.name, size=self._size, description=self.description,
            options=self.options, _shared=self._shared)
        # pinned_at / cache_token are stamped by _memoized_pin; requests
        # start carrying the version as soon as pinned_at is set.
        return pinned

    # -- resilient call path ----------------------------------------------

    def _call(self, request: dict) -> dict:
        """One logical remote call: breaker, timeout, retries, hedging."""
        shared = self._shared
        options = self.options
        if self.pinned_at is not None:
            request = dict(request)
            request["version"] = self.pinned_at
        # Only the execute ops must be answered from the pinned snapshot
        # itself; estimates are advisory, so a (say) evicted-snapshot
        # estimate answered live is not a failure.
        verify_version = (request.get("version") is not None
                          and request["op"] in ("execute", "execute_batch"))
        registry = get_registry()
        with span("remote.call", source=self.uri, op=request["op"]) as sp:
            last_error: Optional[RemoteError] = None
            attempts = 1 + max(0, options.retries)
            for attempt in range(attempts):
                if attempt:
                    shared.retries += 1
                    registry.counter("remote_retries_total",
                                     source=self.uri).inc()
                    time.sleep(options.backoff(attempt - 1, shared.jitter()))
                try:
                    if attempt == 0:
                        response = self._attempt(request)
                    else:
                        with span("remote.retry", source=self.uri,
                                  attempt=attempt):
                            response = self._attempt(request)
                except CircuitOpenError:
                    registry.counter("remote_breaker_rejections_total",
                                     source=self.uri).inc()
                    raise
                except RemoteError as exc:
                    shared.breaker.record_failure()
                    last_error = exc
                    continue
                if verify_version and \
                        response.get("version") != request["version"]:
                    shared.breaker.record_failure()
                    last_error = RemoteProtocolError(
                        f"{self.uri} answered from version "
                        f"{response.get('version')} instead of pinned "
                        f"{request['version']}")
                    continue
                shared.breaker.record_success()
                if sp is not None and attempt:
                    sp.set(attempts=attempt + 1)
                if not response.get("ok"):
                    self._raise_application_error(response)
                return response
            if sp is not None:
                sp.set(attempts=attempts, failed=True)
            assert last_error is not None
            raise last_error

    def _attempt(self, request: dict) -> dict:
        """One attempt: breaker gate, then a possibly hedged exchange."""
        shared = self._shared
        shared.breaker.before_call()
        with shared.lock:
            shared.calls += 1
        delay = shared.hedge_delay()
        started = time.perf_counter()
        try:
            if delay is None:
                response = shared.transport.request(
                    request, timeout=self.options.timeout)
            else:
                response = self._hedged(request, delay)
        finally:
            elapsed = time.perf_counter() - started
            with shared.lock:
                shared.latencies.append(elapsed)
            get_registry().histogram("remote_call_seconds",
                                     source=self.uri).observe(elapsed)
        return response

    def _hedged(self, request: dict, delay: float) -> dict:
        """Race a duplicate request against a slow primary.

        Both legs carry the identical idempotent read, so whichever
        answers first is *the* answer — a hedge can never duplicate rows
        or side effects.  The loser is left to drain in the pool.
        """
        shared = self._shared
        pool = shared.pool()
        timeout = self.options.timeout
        primary = pool.submit(shared.transport.request, request, timeout)
        try:
            return primary.result(timeout=delay)
        except concurrent.futures.TimeoutError:
            pass
        with shared.lock:
            shared.hedges += 1
        get_registry().counter("remote_hedges_total", source=self.uri).inc()
        with span("remote.hedge", source=self.uri, delay_s=round(delay, 4)):
            secondary = pool.submit(shared.transport.request, request, timeout)
            pending = {primary, secondary}
            last_error: Optional[BaseException] = None
            while pending:
                done, pending = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    error = future.exception()
                    if error is None:
                        if future is secondary:
                            with shared.lock:
                                shared.hedge_wins += 1
                            get_registry().counter(
                                "remote_hedge_wins_total",
                                source=self.uri).inc()
                        return future.result()
                    last_error = error
            assert last_error is not None
            raise last_error

    def _raise_application_error(self, response: dict) -> None:
        """Re-raise a server-reported error as its typed local class."""
        error = response.get("error") or {}
        error_type = str(error.get("type") or "")
        message = str(error.get("message") or "remote call failed")
        cls = getattr(errors, error_type, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            raise cls(f"{self.uri}: {message}")
        raise MixedQueryError(
            f"remote source {self.uri} failed: {error_type}: {message}")

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Resilience counters for ``MediatorService.stats()``."""
        shared = self._shared
        with shared.lock:
            latencies = sorted(shared.latencies)
            calls, retries = shared.calls, shared.retries
            hedges, hedge_wins = shared.hedges, shared.hedge_wins
        p95 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.95))] if latencies else None
        return {
            "uri": self.uri,
            "model": self.model,
            "breaker": shared.breaker.state,
            "breaker_transitions": len(shared.breaker.transitions),
            "calls": calls,
            "retries": retries,
            "hedges": hedges,
            "hedge_wins": hedge_wins,
            "latency_p95_s": p95,
            "connections_opened": getattr(
                shared.transport, "connections_opened", None),
        }
