"""Client transports for the remote federation wire protocol.

A transport turns one request payload into one response payload.  Three
implementations:

* :class:`TCPTransport` — pooled keep-alive connections to a
  :class:`~repro.remote.server.SourceServer`;
* :class:`LocalTransport` — in-process loopback to a
  :class:`~repro.remote.server.RemoteSourceHandler`, with optional
  simulated round-trip time (used by benchmarks to model 5–50 ms RTTs
  without real sockets);
* :class:`FaultyTransport` — a *deterministic* fault-injection proxy
  around any other transport, for reproducible chaos tests.

Transport failures are always surfaced as the typed
:class:`~repro.errors.RemoteError` subclasses, never raw socket errors.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

from repro.errors import (
    RemoteProtocolError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.remote import protocol


class Transport:
    """One request/response exchange with a remote source."""

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources; the transport stays usable."""


class TCPTransport(Transport):
    """Pooled keep-alive TCP connections speaking the framed protocol.

    Idle sockets are kept in a bounded pool and reused across requests,
    so a stream of sub-query calls pays connection setup once.  Any
    socket that errors (timeout, reset, EOF) is discarded rather than
    returned to the pool.
    """

    def __init__(self, host: str, port: int, pool_size: int = 4,
                 connect_timeout: float = 2.0):
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        self._idle: deque[socket.socket] = deque()
        self._lock = threading.Lock()
        #: Total sockets ever opened — lets tests assert keep-alive reuse.
        self.connections_opened = 0

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        sock = self._checkout()
        try:
            sock.settimeout(timeout)
            protocol.send_frame(sock, payload)
            response = protocol.recv_frame(sock)
        except socket.timeout as exc:
            self._discard(sock)
            raise SourceTimeoutError(
                f"{self.host}:{self.port} did not answer within "
                f"{timeout}s") from exc
        except RemoteProtocolError:
            self._discard(sock)
            raise
        except OSError as exc:
            self._discard(sock)
            raise SourceUnavailableError(
                f"connection to {self.host}:{self.port} failed: {exc}") from exc
        if response is None:
            self._discard(sock)
            raise SourceUnavailableError(
                f"{self.host}:{self.port} closed the connection")
        self._checkin(sock)
        return response

    def close(self) -> None:
        with self._lock:
            idle, self._idle = list(self._idle), deque()
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass

    # -- connection pool --------------------------------------------------

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._idle:
                return self._idle.popleft()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except OSError as exc:
            raise SourceUnavailableError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        with self._lock:
            self.connections_opened += 1
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def _discard(self, sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass


class LocalTransport(Transport):
    """In-process loopback to a server-side handler.

    Every payload is serialised and re-parsed in both directions, so the
    loopback exercises exactly the fidelity limits of the TCP path; an
    optional ``rtt`` sleep models network latency for benchmarks.
    """

    def __init__(self, handler: Callable[[dict], dict], rtt: float = 0.0):
        self._handler = handler
        self.rtt = rtt

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        if self.rtt:
            if timeout is not None and self.rtt > timeout:
                time.sleep(timeout)
                raise SourceTimeoutError(
                    f"simulated RTT {self.rtt * 1000:.0f}ms exceeds the "
                    f"{timeout}s call timeout")
            time.sleep(self.rtt)
        response = self._handler(protocol.roundtrip(payload))
        return protocol.roundtrip(response)


class FaultyTransport(Transport):
    """Deterministic fault-injection proxy around another transport.

    Faults are decided per *call index*, not per wall-clock instant: the
    i-th request through the proxy sees the fault drawn from a RNG
    seeded with ``(seed, i)``, so a chaos run is reproducible even when
    worker threads interleave differently between runs.

    Parameters
    ----------
    inner:
        The transport real requests are forwarded to.
    seed:
        Base seed of the per-call fault decisions.
    fault_rate:
        Probability in ``[0, 1]`` that a call outside an outage window
        suffers an injected fault.
    latency_range:
        ``(lo, hi)`` seconds of deterministic extra latency added to
        every forwarded call.
    outages:
        Scripted full-outage windows as half-open call-index ranges
        ``(start, end)`` — every call whose index falls in a window
        fails with :class:`SourceUnavailableError` without reaching the
        inner transport.
    """

    #: Fault kinds drawn (uniformly) for a faulty call.
    FAULTS = ("timeout", "reset", "wrong_version")

    def __init__(self, inner: Transport, seed: int = 0, fault_rate: float = 0.0,
                 latency_range: tuple[float, float] = (0.0, 0.0),
                 outages: Sequence[tuple[int, int]] = ()):
        self.inner = inner
        self.seed = seed
        self.fault_rate = fault_rate
        self.latency_range = latency_range
        self.outages = tuple(outages)
        self._lock = threading.Lock()
        self._calls = 0
        self.injected: dict[str, int] = {
            "timeout": 0, "reset": 0, "wrong_version": 0, "outage": 0}

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        with self._lock:
            index = self._calls
            self._calls += 1
        # Deterministic per-call stream: mixing the base seed with the
        # call index keeps fault decisions stable across runs no matter
        # how worker threads interleave their requests.
        rng = random.Random(self.seed * 1_000_003 + index)
        lo, hi = self.latency_range
        if hi > 0:
            time.sleep(rng.uniform(lo, hi))
        if any(start <= index < end for start, end in self.outages):
            with self._lock:
                self.injected["outage"] += 1
            raise SourceUnavailableError(
                f"injected outage (call #{index})")
        fault = None
        if self.fault_rate > 0 and rng.random() < self.fault_rate:
            fault = self.FAULTS[rng.randrange(len(self.FAULTS))]
        if fault == "timeout":
            with self._lock:
                self.injected["timeout"] += 1
            raise SourceTimeoutError(f"injected timeout (call #{index})")
        if fault == "reset":
            with self._lock:
                self.injected["reset"] += 1
            raise SourceUnavailableError(
                f"injected connection reset (call #{index})")
        response = self.inner.request(payload, timeout=timeout)
        if fault == "wrong_version":
            with self._lock:
                self.injected["wrong_version"] += 1
            tampered = dict(response)
            tampered["version"] = -1
            return tampered
        return response

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def close(self) -> None:
        self.inner.close()
