"""Resilience policies for remote source calls.

:class:`RemoteOptions` bundles the per-source knobs (timeout, retry
budget, backoff, hedging, breaker thresholds); :class:`CircuitBreaker`
implements the classic closed / open / half-open state machine with an
injectable clock so tests can script time.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import CircuitOpenError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RemoteOptions:
    """Resilience knobs of one :class:`~repro.remote.client.RemoteSource`.

    Attributes
    ----------
    timeout:
        Per-call network timeout in seconds.
    retries:
        Extra attempts after the first for *idempotent reads* that fail
        with a transport-level :class:`~repro.errors.RemoteError`.
    backoff_base / backoff_max / backoff_jitter:
        Exponential backoff between retries: attempt *n* sleeps
        ``min(backoff_base * 2**n, backoff_max)`` plus a deterministic
        jitter fraction drawn from the source's seeded RNG.
    hedge_delay:
        Seconds to wait before launching a hedged duplicate of a slow
        call.  ``None`` derives the delay from the p95 of recent call
        latencies (once ``hedge_min_samples`` are available); ``0``
        disables hedging.
    hedge_min_samples:
        Latency observations needed before p95-derived hedging kicks in.
    breaker_failures:
        Consecutive failures that trip the breaker open.
    breaker_reset:
        Seconds the breaker stays open before admitting half-open probes.
    breaker_probes:
        Successful half-open probes required to close the breaker again.
    """

    timeout: float = 1.0
    retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    backoff_jitter: float = 0.5
    hedge_delay: Optional[float] = None
    hedge_min_samples: int = 8
    breaker_failures: int = 5
    breaker_reset: float = 1.0
    breaker_probes: int = 1

    def backoff(self, attempt: int, jitter: float = 0.0) -> float:
        """Sleep before retry ``attempt`` (0-based), jitter in [0, 1)."""
        base = min(self.backoff_base * (2 ** attempt), self.backoff_max)
        return base * (1.0 + self.backoff_jitter * jitter)


class CircuitBreaker:
    """Per-source circuit breaker: closed / open / half-open.

    ``breaker_failures`` consecutive failures open the circuit; while
    open, :meth:`before_call` fails fast with
    :class:`~repro.errors.CircuitOpenError` without touching the
    network.  After ``breaker_reset`` seconds the breaker admits up to
    ``breaker_probes`` concurrent probe calls (half-open); enough probe
    successes close it, any probe failure re-opens it.

    The clock is injectable so tests can drive the state machine
    deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, name: str, failures: int = 5, reset_after: float = 1.0,
                 probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        self.name = name
        self.failures = max(1, failures)
        self.reset_after = reset_after
        self.probes = max(1, probes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when open."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return
            if self._state == self.HALF_OPEN and \
                    self._probes_in_flight < self.probes:
                self._probes_in_flight += 1
                return
            remaining = self.reset_after - (self._clock() - self._opened_at)
            raise CircuitOpenError(
                f"circuit for {self.name} is {self._state}"
                + (f" (retry in {remaining:.2f}s)" if remaining > 0 else ""))

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.probes:
                    self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._consecutive_failures += 1
            if self._state == self.CLOSED and \
                    self._consecutive_failures >= self.failures:
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    # -- internal (lock held) ---------------------------------------------

    def _maybe_half_open(self) -> None:
        if self._state == self.OPEN and \
                self._clock() - self._opened_at >= self.reset_after:
            self._transition(self.HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if new_state == self.HALF_OPEN:
            self._probe_successes = 0
            self._probes_in_flight = 0
        elif new_state == self.CLOSED:
            self._consecutive_failures = 0
        self.transitions.append((old_state, new_state))
        logger.warning("circuit breaker %s: %s -> %s",
                       self.name, old_state, new_state)
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)
