"""Inverted index and postings for the full-text substrate."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass


@dataclass
class Posting:
    """One document entry in a term's postings list."""

    doc_id: str
    term_frequency: int
    positions: tuple[int, ...] = ()


class InvertedIndex:
    """Term → postings map for one indexed text field."""

    def __init__(self, field_name: str):
        self.field_name = field_name
        self._postings: dict[str, dict[str, Posting]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, doc_id: str, terms: list[str]) -> None:
        """Index ``terms`` (already analysed) for ``doc_id``."""
        counts = Counter(terms)
        positions: dict[str, list[int]] = defaultdict(list)
        for position, term in enumerate(terms):
            positions[term].append(position)
        for term, count in counts.items():
            self._postings[term][doc_id] = Posting(
                doc_id=doc_id, term_frequency=count, positions=tuple(positions[term])
            )
        self._doc_lengths[doc_id] = len(terms)

    def remove(self, doc_id: str) -> None:
        """Remove every posting of ``doc_id``."""
        for postings in self._postings.values():
            postings.pop(doc_id, None)
        self._doc_lengths.pop(doc_id, None)

    def _copy(self) -> "InvertedIndex":
        """Structural copy (snapshot support); Postings are immutable
        and therefore shared."""
        twin = InvertedIndex(self.field_name)
        for term, postings in self._postings.items():
            twin._postings[term] = dict(postings)
        twin._doc_lengths = dict(self._doc_lengths)
        return twin

    # ------------------------------------------------------------------
    def postings(self, term: str) -> list[Posting]:
        """Return the postings list of ``term`` (empty if unseen)."""
        return list(self._postings.get(term, {}).values())

    def documents_with(self, term: str) -> set[str]:
        """Return the doc ids containing ``term``."""
        return set(self._postings.get(term, {}))

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def document_count(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    def document_length(self, doc_id: str) -> int:
        """Number of terms indexed for ``doc_id``."""
        return self._doc_lengths.get(doc_id, 0)

    def average_document_length(self) -> float:
        """Mean document length (used by BM25)."""
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def vocabulary(self) -> set[str]:
        """Every indexed term."""
        return set(self._postings)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        n = self.document_count()
        df = self.document_frequency(term)
        return math.log((n + 1) / (df + 1)) + 1.0

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of ``term`` in ``doc_id``."""
        posting = self._postings.get(term, {}).get(doc_id)
        return posting.term_frequency if posting else 0

    def __len__(self) -> int:
        return len(self._postings)
