"""Text analysis: tokenisation, stop words, light stemming, hashtags.

The paper's Solr instances index the *stemmed text* of tweets and Facebook
posts; hashtags are extracted into their own field (Figure 2,
``entities.hashtags``).  This module provides the equivalent analysis
chain for French and English text, implemented without external
dependencies (a light suffix-stripping stemmer is enough for the
vocabulary analytics of Figure 3).
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass, field

_TOKEN_RE = re.compile(r"[#@]?[\w'À-ſ-]+", re.UNICODE)
_HASHTAG_RE = re.compile(r"#(\w+)", re.UNICODE)
_MENTION_RE = re.compile(r"@(\w+)", re.UNICODE)
_URL_RE = re.compile(r"https?://\S+")

#: French stop words (small curated list, lowercase, unaccented).
FRENCH_STOPWORDS = frozenset("""
a au aux avec ce ces cette dans de des du elle elles en et eux il ils je la
le les leur leurs lui ma mais me meme mes moi mon ne nos notre nous on ou par
pas pour qu que qui sa se ses son sur ta te tes toi ton tu un une vos votre
vous y d l j n s t c qu est sont etre avoir a ont fait plus tres tout tous
toute toutes comme si bien sans aussi apres avant chez entre vers donc alors
deja encore ici la-bas peu beaucoup nous-memes cet celui celle ceux celles
""".split())

#: English stop words (small curated list).
ENGLISH_STOPWORDS = frozenset("""
a an and are as at be but by for from has have he her his i in is it its me
my not of on or our she so that the their them they this to was we were what
when where which who will with you your
""".split())

_FRENCH_SUFFIXES = (
    "issements", "issement", "atrices", "atrice", "ations", "ation", "ements",
    "ement", "euses", "euse", "istes", "iste", "ances", "ance", "ences",
    "ence", "ments", "ment", "ables", "able", "ibles", "ible", "eurs", "eur",
    "ives", "ive", "ifs", "if", "es", "s", "e",
)

_ENGLISH_SUFFIXES = ("ations", "ation", "ingly", "ings", "ing", "edly", "ed",
                     "ness", "ies", "ly", "es", "s")


@dataclass(frozen=True)
class AnalyzedText:
    """The result of analysing a raw text."""

    tokens: tuple[str, ...]
    stems: tuple[str, ...]
    hashtags: tuple[str, ...]
    mentions: tuple[str, ...]
    urls: tuple[str, ...] = ()


@dataclass
class Analyzer:
    """Configurable analysis chain (tokenise → normalise → filter → stem)."""

    language: str = "fr"
    keep_hashtags: bool = True
    min_token_length: int = 2
    extra_stopwords: frozenset[str] = field(default_factory=frozenset)

    def stopwords(self) -> frozenset[str]:
        """Return the effective stop-word set for the configured language."""
        base = FRENCH_STOPWORDS if self.language == "fr" else ENGLISH_STOPWORDS
        return base | self.extra_stopwords

    def analyze(self, text: str) -> AnalyzedText:
        """Run the full analysis chain over ``text``."""
        urls = tuple(_URL_RE.findall(text))
        cleaned = _URL_RE.sub(" ", text)
        hashtags = tuple(tag.lower() for tag in _HASHTAG_RE.findall(cleaned))
        mentions = tuple(m.lower() for m in _MENTION_RE.findall(cleaned))
        stop = self.stopwords()
        tokens: list[str] = []
        for raw in _TOKEN_RE.findall(cleaned):
            if raw.startswith("@"):
                continue
            if raw.startswith("#"):
                if self.keep_hashtags:
                    tokens.append(raw.lower())
                continue
            token = normalize(raw)
            if len(token) < self.min_token_length or token in stop or token.isdigit():
                continue
            tokens.append(token)
        stems = tuple(stem(t, self.language) if not t.startswith("#") else t for t in tokens)
        return AnalyzedText(tokens=tuple(tokens), stems=stems,
                            hashtags=hashtags, mentions=mentions, urls=urls)

    def stems(self, text: str) -> list[str]:
        """Shortcut returning only the stemmed tokens of ``text``."""
        return list(self.analyze(text).stems)


def tokenize(text: str) -> list[str]:
    """Plain tokenisation (lowercased, accents stripped, no filtering)."""
    return [normalize(t) for t in _TOKEN_RE.findall(text)]


_ELISION_RE = re.compile(r"^(?:l|d|j|n|s|t|c|m|qu)'(.+)$")


def normalize(token: str) -> str:
    """Lowercase a token, strip diacritics (é → e) and French elisions (d'…)."""
    lowered = token.lower().strip("'-")
    decomposed = unicodedata.normalize("NFD", lowered)
    stripped = "".join(ch for ch in decomposed if unicodedata.category(ch) != "Mn")
    elision = _ELISION_RE.match(stripped)
    return elision.group(1) if elision else stripped


def stem(token: str, language: str = "fr") -> str:
    """Light suffix-stripping stemmer.

    Not a full Snowball implementation: it removes the most common
    inflexional suffixes while never shortening a token below four
    characters, which is sufficient to merge singular/plural and verb
    nominalisations in the tag-cloud analytics.
    """
    token = normalize(token)
    suffixes = _FRENCH_SUFFIXES if language == "fr" else _ENGLISH_SUFFIXES
    for suffix in suffixes:
        if token.endswith(suffix) and len(token) - len(suffix) >= 4:
            return token[: -len(suffix)]
    return token


def extract_hashtags(text: str) -> list[str]:
    """Return the hashtags (without ``#``) of ``text``, lowercased."""
    return [t.lower() for t in _HASHTAG_RE.findall(text)]


def extract_mentions(text: str) -> list[str]:
    """Return the @mentions (without ``@``) of ``text``, lowercased."""
    return [t.lower() for t in _MENTION_RE.findall(text)]
