"""Relevance scoring (TF-IDF and BM25) for full-text search results."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fulltext.index import InvertedIndex


@dataclass(frozen=True)
class BM25Parameters:
    """The two free parameters of Okapi BM25."""

    k1: float = 1.2
    b: float = 0.75


def tf_idf_score(index: InvertedIndex, terms: list[str], doc_id: str) -> float:
    """Cosine-less TF-IDF score of ``doc_id`` for a bag of query terms."""
    score = 0.0
    for term in terms:
        tf = index.term_frequency(term, doc_id)
        if tf == 0:
            continue
        score += (1.0 + math.log(tf)) * index.idf(term)
    return score


def bm25_score(index: InvertedIndex, terms: list[str], doc_id: str,
               parameters: BM25Parameters | None = None) -> float:
    """Okapi BM25 score of ``doc_id`` for a bag of query terms."""
    parameters = parameters or BM25Parameters()
    average_length = index.average_document_length() or 1.0
    doc_length = index.document_length(doc_id)
    score = 0.0
    for term in terms:
        tf = index.term_frequency(term, doc_id)
        if tf == 0:
            continue
        idf = index.idf(term)
        numerator = tf * (parameters.k1 + 1.0)
        denominator = tf + parameters.k1 * (
            1.0 - parameters.b + parameters.b * doc_length / average_length
        )
        score += idf * numerator / denominator
    return score
