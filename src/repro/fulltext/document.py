"""Documents stored in the Solr-like full-text substrate.

A document is a flat or nested JSON object (Figure 2 of the paper shows
the tweet structure).  Nested fields are addressed with dotted paths
(``user.screen_name``), exactly the notation the digests use for value-set
positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import FullTextError


@dataclass
class Document:
    """One indexed document: an id plus its JSON-like field tree."""

    doc_id: str
    fields: dict[str, Any] = field(default_factory=dict)

    def get(self, path: str, default: Any = None) -> Any:
        """Return the value at a dotted ``path`` (``user.screen_name``)."""
        current: Any = self.fields
        for part in path.split("."):
            if isinstance(current, dict) and part in current:
                current = current[part]
            else:
                return default
        return current

    def flat_fields(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(dotted_path, scalar_value)`` pairs for every leaf."""
        yield from _flatten("", self.fields)

    def text_of(self, paths: list[str]) -> str:
        """Concatenate the string values found at ``paths``."""
        parts = []
        for path in paths:
            value = self.get(path)
            if isinstance(value, str):
                parts.append(value)
            elif isinstance(value, list):
                parts.extend(str(v) for v in value)
            elif value is not None:
                parts.append(str(value))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Document(id={self.doc_id!r}, fields={sorted(self.fields)})"


def make_document(source: dict[str, Any], id_field: str = "id") -> Document:
    """Build a :class:`Document` from a raw JSON object.

    The document id is taken from ``id_field`` (dotted paths allowed); a
    missing id raises :class:`FullTextError` because the store needs a
    stable identity for updates and joins.
    """
    doc = Document(doc_id="", fields=dict(source))
    raw_id = doc.get(id_field)
    if raw_id is None:
        raise FullTextError(f"document is missing its id field {id_field!r}: {source}")
    doc.doc_id = str(raw_id)
    return doc


def _flatten(prefix: str, value: Any) -> Iterator[tuple[str, Any]]:
    # Explicit stack: pathological documents (depth 10k+) must not blow
    # Python's recursion limit.  Children are pushed reversed so the
    # yield order matches the natural depth-first, left-to-right order.
    stack: list[tuple[str, Any]] = [(prefix, value)]
    while stack:
        prefix, value = stack.pop()
        if isinstance(value, dict):
            items = [(f"{prefix}.{key}" if prefix else str(key), child)
                     for key, child in value.items()]
            stack.extend(reversed(items))
        elif isinstance(value, list):
            stack.extend((prefix, child) for child in reversed(value))
        else:
            yield prefix, value
