"""The Solr-like full-text store.

Plays the role of the paper's Apache Solr instances: tweets and Facebook
posts are continuously indexed with their author, timestamps, counters and
stemmed text, and the mediator ships keyword/hashtag sub-queries to it.

A store declares *field types*:

``text``
    analysed (tokenised, stop-worded, stemmed) and searched by term or
    phrase;
``keyword``
    indexed verbatim (lowercased) for exact matching — hashtags, screen
    names, ids;
``numeric`` / ``date``
    stored for range queries, sorting and faceting.
"""

from __future__ import annotations

import threading
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.deltas import DeltaJournal, INSERT, REMOVE, UPSERT
from repro.errors import FullTextError
from repro.fulltext.analysis import Analyzer
from repro.locks import RWLock
from repro.fulltext.document import Document, make_document
from repro.fulltext.index import InvertedIndex
from repro.fulltext.query import (
    BooleanQuery,
    MatchAllQuery,
    NotQuery,
    PhraseQuery,
    Query,
    RangeQuery,
    TermQuery,
    parse_query,
)
from repro.fulltext.scoring import BM25Parameters, bm25_score


@dataclass(frozen=True)
class FieldConfig:
    """Declaration of one indexed field."""

    name: str
    field_type: str  # text | keyword | numeric | date
    multi_valued: bool = False

    def __post_init__(self) -> None:
        if self.field_type not in ("text", "keyword", "numeric", "date"):
            raise FullTextError(f"unknown field type {self.field_type!r} for {self.name!r}")


@dataclass
class SearchHit:
    """One search result: the document plus its relevance score."""

    document: Document
    score: float

    def get(self, path: str, default: Any = None) -> Any:
        """Shortcut to the underlying document's field access."""
        return self.document.get(path, default)


@dataclass
class SearchResult:
    """The outcome of a search: hits, total count and optional facets."""

    hits: list[SearchHit]
    total: int
    facets: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    def documents(self) -> list[Document]:
        """The matched documents in score order."""
        return [hit.document for hit in self.hits]

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self):
        return iter(self.hits)


class FullTextStore:
    """An in-memory document store with Lucene-flavoured querying."""

    def __init__(self, name: str, fields: Sequence[FieldConfig],
                 default_field: str | None = None, id_field: str = "id",
                 analyzer: Analyzer | None = None):
        self.name = name
        self.id_field = id_field
        self.analyzer = analyzer or Analyzer()
        self._fields = {f.name: f for f in fields}
        text_fields = [f.name for f in fields if f.field_type == "text"]
        self.default_field = default_field or (text_fields[0] if text_fields else None)
        self._documents: dict[str, Document] = {}
        self._text_indexes: dict[str, InvertedIndex] = {
            f.name: InvertedIndex(f.name) for f in fields if f.field_type == "text"
        }
        self._keyword_indexes: dict[str, dict[str, set[str]]] = {
            f.name: defaultdict(set) for f in fields if f.field_type == "keyword"
        }
        self._version = 0
        #: Typed mutation log (shared with snapshots).
        self._journal = DeltaJournal()
        #: field -> (version, average df); see average_document_frequency.
        self._average_df_cache: dict[str, tuple[int, float | None]] = {}
        self._rwlock = RWLock()
        self._snapshot_state: tuple[int, "FullTextStore"] | None = None
        self._snapshot_lock = threading.Lock()

    @property
    def version(self) -> int:
        """Monotonic mutation counter (used for cache invalidation)."""
        return self._version

    @property
    def journal(self) -> DeltaJournal:
        """The store's typed mutation log (shared with snapshots)."""
        return self._journal

    def deltas_since(self, version: int, upto: int | None = None):
        """The unbroken delta chain ``version -> upto`` (None on a gap)."""
        target = self._version if upto is None else upto
        return self._journal.since(version, target)

    def field_configs(self) -> list[FieldConfig]:
        """The declared field configurations (delta-store construction)."""
        return list(self._fields.values())

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add(self, source: dict[str, Any] | Document) -> Document:
        """Index one document (raw JSON object or :class:`Document`).

        Re-adding an existing ``doc_id`` is an upsert: the old copy is
        de-indexed in place and the version bumps exactly once.
        """
        doc = source if isinstance(source, Document) else make_document(source, self.id_field)
        with self._rwlock.write_locked():
            replaced = self._deindex_unlocked(doc.doc_id)
            self._index_unlocked(doc)
            pre = self._version
            self._version += 1
            entry = self._journal.record(pre, pre + 1,
                                         UPSERT if replaced else INSERT, (doc,))
        self._journal.notify(entry)
        return doc

    def add_all(self, sources: Iterable[dict[str, Any] | Document]) -> int:
        """Index every document of ``sources``; return how many were added.

        The write lock is held across the whole batch, so a concurrent
        snapshot sees all of it or none of it — and the whole batch is
        ONE version bump (one ingest = one invalidation).
        """
        entry = None
        with self._rwlock.write_locked():
            added: list[Document] = []
            replaced = False
            for source in sources:
                doc = source if isinstance(source, Document) \
                    else make_document(source, self.id_field)
                replaced = self._deindex_unlocked(doc.doc_id) or replaced
                self._index_unlocked(doc)
                added.append(doc)
            if added:
                pre = self._version
                self._version += 1
                entry = self._journal.record(pre, pre + 1,
                                             UPSERT if replaced else INSERT,
                                             added)
        if entry is not None:
            self._journal.notify(entry)
        return len(added)

    def _index_unlocked(self, doc: Document) -> None:
        self._documents[doc.doc_id] = doc
        for field_name, config in self._fields.items():
            value = doc.get(field_name)
            if value is None:
                continue
            if config.field_type == "text":
                terms = self.analyzer.stems(self._stringify(value))
                self._text_indexes[field_name].add(doc.doc_id, terms)
            elif config.field_type == "keyword":
                for keyword in self._keyword_values(value):
                    self._keyword_indexes[field_name][keyword].add(doc.doc_id)

    def _deindex_unlocked(self, doc_id: str) -> bool:
        doc = self._documents.pop(doc_id, None)
        if doc is None:
            return False
        for index in self._text_indexes.values():
            index.remove(doc_id)
        for keyword_index in self._keyword_indexes.values():
            for doc_ids in keyword_index.values():
                doc_ids.discard(doc_id)
        return True

    def remove(self, doc_id: str) -> bool:
        """Remove a document from the store and all its indexes."""
        with self._rwlock.write_locked():
            if not self._deindex_unlocked(doc_id):
                return False
            pre = self._version
            self._version += 1
            entry = self._journal.record(pre, pre + 1, REMOVE, (doc_id,))
        self._journal.notify(entry)
        return True

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    def snapshot(self) -> "FullTextStore":
        """A frozen copy of the store at its current version (memoised).

        Documents and postings are immutable after indexing and shared;
        only the containers and mutable index buckets are copied.
        """
        with self._rwlock.read_locked():
            state = self._snapshot_state
            if state is not None and state[0] == self._version:
                return state[1]
            with self._snapshot_lock:
                state = self._snapshot_state
                if state is not None and state[0] == self._version:
                    return state[1]
                frozen = FullTextStore.__new__(FullTextStore)
                frozen.name = self.name
                frozen.id_field = self.id_field
                frozen.analyzer = self.analyzer
                frozen._fields = self._fields
                frozen.default_field = self.default_field
                frozen._documents = dict(self._documents)
                frozen._text_indexes = {
                    name: index._copy() for name, index in self._text_indexes.items()}
                frozen._keyword_indexes = {
                    name: defaultdict(set, {k: set(v) for k, v in buckets.items()})
                    for name, buckets in self._keyword_indexes.items()}
                frozen._version = self._version
                frozen._journal = self._journal
                frozen._average_df_cache = dict(self._average_df_cache)
                frozen._rwlock = RWLock()
                frozen._snapshot_state = (frozen._version, frozen)
                frozen._snapshot_lock = threading.Lock()
                self._snapshot_state = (self._version, frozen)
                return frozen

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: str) -> Document | None:
        """Return one document by id."""
        return self._documents.get(doc_id)

    def documents(self) -> list[Document]:
        """Every stored document (unordered)."""
        return list(self._documents.values())

    def field_names(self) -> list[str]:
        """The declared field names."""
        return list(self._fields)

    def field_config(self, name: str) -> FieldConfig | None:
        """Return the configuration of field ``name`` if declared."""
        return self._fields.get(name)

    def field_values(self, name: str) -> list[Any]:
        """Every value observed for field ``name`` (digest support)."""
        values = []
        for doc in self._documents.values():
            value = doc.get(name)
            if value is None:
                continue
            if isinstance(value, list):
                values.extend(value)
            else:
                values.append(value)
        return values

    # ------------------------------------------------------------------
    # Index statistics (planner cardinality estimation)
    # ------------------------------------------------------------------
    def term_documents(self, field_name: str, term: str) -> set[str] | None:
        """Doc ids matching ``field_name:term``, straight from the indexes.

        Text fields answer from the inverted index (the term is analysed
        like query terms; a multi-token term intersects postings);
        keyword fields answer from the exact (lowercased) buckets.
        Returns ``None`` for fields backed by neither index — the caller
        must fall back rather than guess.
        """
        index = self._text_indexes.get(field_name)
        if index is not None:
            tokens = self.analyzer.stems(str(term))
            if not tokens:
                return set()
            docs = index.documents_with(tokens[0])
            for token in tokens[1:]:
                docs &= index.documents_with(token)
                if not docs:
                    break
            return docs
        buckets = self._keyword_indexes.get(field_name)
        if buckets is not None:
            return set(buckets.get(str(term).lower(), ()))
        return None

    def document_frequency(self, field_name: str, term: str) -> int | None:
        """Number of documents matching ``field_name:term`` (index-backed)."""
        docs = self.term_documents(field_name, term)
        return len(docs) if docs is not None else None

    def distinct_term_count(self, field_name: str) -> int | None:
        """Distinct indexed terms/values of one field (``None`` if unindexed)."""
        index = self._text_indexes.get(field_name)
        if index is not None:
            return len(index.vocabulary())
        buckets = self._keyword_indexes.get(field_name)
        if buckets is not None:
            return sum(1 for doc_ids in buckets.values() if doc_ids)
        return None

    def average_document_frequency(self, field_name: str) -> float | None:
        """Mean postings per distinct term — the expected matches of an
        equality with an unknown (bound-at-run-time) value.

        The full-vocabulary scan is memoised per store version (it sits
        on the planner's estimation hot path).
        """
        version = self._version
        cached = self._average_df_cache.get(field_name)
        if cached is not None and cached[0] == version:
            return cached[1]
        average = self._compute_average_document_frequency(field_name)
        # Memoised under the version read *before* the scan: a concurrent
        # mutation mid-scan then misses the memo instead of serving a
        # stale average as current.
        self._average_df_cache[field_name] = (version, average)
        return average

    def _compute_average_document_frequency(self, field_name: str) -> float | None:
        index = self._text_indexes.get(field_name)
        if index is not None:
            vocabulary = index.vocabulary()
            if not vocabulary:
                return 0.0
            postings = sum(index.document_frequency(t) for t in vocabulary)
            return postings / len(vocabulary)
        buckets = self._keyword_indexes.get(field_name)
        if buckets is not None:
            sizes = [len(doc_ids) for doc_ids in buckets.values() if doc_ids]
            if not sizes:
                return 0.0
            return sum(sizes) / len(sizes)
        return None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: str | Query, limit: int | None = 10,
               sort_by: str | None = None, descending: bool = True,
               facet_fields: Sequence[str] = ()) -> SearchResult:
        """Run a query and return scored hits.

        ``sort_by`` replaces relevance ordering with a stored field
        (e.g. ``retweet_count``); ``facet_fields`` adds value counts over
        the matched documents (used for the tag clouds and digests).
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        matches = self._evaluate(parsed)
        scoring_terms = self._scoring_terms(parsed)
        hits = []
        for doc_id in matches:
            doc = self._documents[doc_id]
            score = self._score(doc_id, scoring_terms)
            hits.append(SearchHit(document=doc, score=score))
        if sort_by:
            hits.sort(key=lambda h: (h.get(sort_by) is None, h.get(sort_by)), reverse=descending)
        else:
            hits.sort(key=lambda h: (-h.score, h.document.doc_id))
        total = len(hits)
        facets = {f: self.facet(matches, f) for f in facet_fields}
        if limit is not None:
            hits = hits[:limit]
        return SearchResult(hits=hits, total=total, facets=facets)

    def count(self, query: str | Query) -> int:
        """Number of documents matching ``query``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return len(self._evaluate(parsed))

    def facet(self, doc_ids: Iterable[str], field_name: str, top: int | None = None) -> list[tuple[str, int]]:
        """Value counts of ``field_name`` over ``doc_ids`` (most frequent first)."""
        counter: Counter[str] = Counter()
        for doc_id in doc_ids:
            doc = self._documents.get(doc_id)
            if doc is None:
                continue
            value = doc.get(field_name)
            if value is None:
                continue
            if isinstance(value, list):
                counter.update(str(v).lower() for v in value)
            else:
                counter[str(value).lower()] += 1
        ranked = counter.most_common(top)
        return ranked

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, query: Query) -> set[str]:
        if isinstance(query, MatchAllQuery):
            return set(self._documents)
        if isinstance(query, TermQuery):
            return self._evaluate_term(query)
        if isinstance(query, PhraseQuery):
            return self._evaluate_phrase(query)
        if isinstance(query, RangeQuery):
            return self._evaluate_range(query)
        if isinstance(query, NotQuery):
            return set(self._documents) - self._evaluate(query.operand)
        if isinstance(query, BooleanQuery):
            sets = [self._evaluate(operand) for operand in query.operands]
            if not sets:
                return set()
            if query.operator == "AND":
                result = sets[0]
                for s in sets[1:]:
                    result = result & s
                return result
            result = set()
            for s in sets:
                result |= s
            return result
        raise FullTextError(f"unsupported query node {type(query).__name__}")

    def _evaluate_term(self, query: TermQuery) -> set[str]:
        field_name = query.field or self.default_field
        if field_name is None:
            raise FullTextError("store has no default text field for bare term queries")
        if query.term == "*":
            return {doc_id for doc_id, doc in self._documents.items()
                    if doc.get(field_name) is not None}
        config = self._fields.get(field_name)
        if config is None:
            # Unknown field: fall back to a stored-value comparison.
            return self._match_stored(field_name, query.term)
        if config.field_type == "text":
            stems = self.analyzer.stems(query.term)
            if not stems:
                return set()
            result: set[str] | None = None
            for stem_term in stems:
                docs = self._text_indexes[field_name].documents_with(stem_term)
                result = docs if result is None else result & docs
            return result or set()
        if config.field_type == "keyword":
            return set(self._keyword_indexes[field_name].get(query.term.lower(), set()))
        return self._match_stored(field_name, query.term)

    def _evaluate_phrase(self, query: PhraseQuery) -> set[str]:
        field_name = query.field or self.default_field
        if field_name is None or field_name not in self._text_indexes:
            raise FullTextError(f"phrase queries need an analysed text field, got {field_name!r}")
        index = self._text_indexes[field_name]
        stems = [s for term in query.terms for s in self.analyzer.stems(term)]
        if not stems:
            return set()
        candidates: set[str] | None = None
        for stem_term in stems:
            docs = index.documents_with(stem_term)
            candidates = docs if candidates is None else candidates & docs
        if not candidates:
            return set()
        matches = set()
        for doc_id in candidates:
            positions = [dict.fromkeys(p.positions) for p in
                         (next((pp for pp in index.postings(s) if pp.doc_id == doc_id), None)
                          for s in stems) if p is not None]
            if len(positions) != len(stems):
                continue
            first_positions = positions[0]
            for start in first_positions:
                if all((start + offset) in positions[offset] for offset in range(1, len(stems))):
                    matches.add(doc_id)
                    break
        return matches

    def _evaluate_range(self, query: RangeQuery) -> set[str]:
        matches = set()
        for doc_id, doc in self._documents.items():
            value = doc.get(query.field)
            if value is None:
                continue
            if not _within(value, query.low, query.high, query.include_low, query.include_high):
                continue
            matches.add(doc_id)
        return matches

    def _match_stored(self, field_name: str, term: str) -> set[str]:
        lowered = term.lower()
        out = set()
        for doc_id, doc in self._documents.items():
            value = doc.get(field_name)
            if value is None:
                continue
            if isinstance(value, list):
                if any(str(v).lower() == lowered for v in value):
                    out.add(doc_id)
            elif str(value).lower() == lowered:
                out.add(doc_id)
        return out

    def _scoring_terms(self, query: Query) -> dict[str, list[str]]:
        """Collect, per text field, the stems contributing to relevance."""
        terms: dict[str, list[str]] = defaultdict(list)

        def walk(node: Query) -> None:
            if isinstance(node, TermQuery):
                field_name = node.field or self.default_field
                if field_name in self._text_indexes and node.term != "*":
                    terms[field_name].extend(self.analyzer.stems(node.term))
            elif isinstance(node, PhraseQuery):
                field_name = node.field or self.default_field
                if field_name in self._text_indexes:
                    for term in node.terms:
                        terms[field_name].extend(self.analyzer.stems(term))
            elif isinstance(node, BooleanQuery):
                for operand in node.operands:
                    walk(operand)
            elif isinstance(node, NotQuery):
                pass

        walk(query)
        return terms

    def _score(self, doc_id: str, scoring_terms: dict[str, list[str]],
               parameters: BM25Parameters | None = None) -> float:
        score = 0.0
        for field_name, terms in scoring_terms.items():
            if terms:
                score += bm25_score(self._text_indexes[field_name], terms, doc_id, parameters)
        return score if score else 1.0

    def _keyword_values(self, value: Any) -> list[str]:
        if isinstance(value, list):
            return [str(v).lower() for v in value]
        return [str(value).lower()]

    @staticmethod
    def _stringify(value: Any) -> str:
        if isinstance(value, list):
            return " ".join(str(v) for v in value)
        return str(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FullTextStore(name={self.name!r}, documents={len(self)})"


def _within(value: Any, low: Any, high: Any, include_low: bool, include_high: bool) -> bool:
    try:
        if low is not None:
            if include_low and value < low:
                return False
            if not include_low and value <= low:
                return False
        if high is not None:
            if include_high and value > high:
                return False
            if not include_high and value >= high:
                return False
    except TypeError:
        value_str, low_str, high_str = str(value), None if low is None else str(low), None if high is None else str(high)
        if low_str is not None and value_str < low_str:
            return False
        if high_str is not None and value_str > high_str:
            return False
    return True


def tweet_store(name: str = "solr_tweets") -> FullTextStore:
    """A store pre-configured with the tweet fields of Figure 2."""
    fields = [
        FieldConfig("text", "text"),
        FieldConfig("entities.hashtags", "keyword", multi_valued=True),
        FieldConfig("user.screen_name", "keyword"),
        FieldConfig("user.name", "keyword"),
        FieldConfig("user.id", "keyword"),
        FieldConfig("created_at", "date"),
        FieldConfig("week", "keyword"),
        FieldConfig("retweet_count", "numeric"),
        FieldConfig("favorite_count", "numeric"),
        FieldConfig("user.followers_count", "numeric"),
    ]
    return FullTextStore(name=name, fields=fields, default_field="text")


def facebook_store(name: str = "solr_facebook") -> FullTextStore:
    """A store pre-configured for the Facebook-post collection of the demo."""
    fields = [
        FieldConfig("message", "text"),
        FieldConfig("author", "keyword"),
        FieldConfig("page_id", "keyword"),
        FieldConfig("created_at", "date"),
        FieldConfig("likes", "numeric"),
        FieldConfig("shares", "numeric"),
        FieldConfig("comments", "numeric"),
    ]
    return FullTextStore(name=name, fields=fields, default_field="message")
