"""The query language of the Solr-like store.

The mediator ships sub-queries such as "tweets with hashtag SIA2016"
(``tweetContains`` in the paper's qSIA) to the full-text source in *its*
query language.  We support a Solr/Lucene-flavoured subset:

* ``text:emergency`` — term match on an analysed field,
* ``hashtags:SIA2016`` — exact match on a keyword field,
* ``user.screen_name:fhollande`` — dotted paths for nested fields,
* ``retweet_count:[100 TO *]`` — numeric/date range queries,
* ``a AND b``, ``a OR b``, ``NOT a``, parentheses,
* ``"state of emergency"`` — phrase queries on analysed fields,
* a bare term searches the store's default field.

Queries parse to a small AST evaluated by :class:`~repro.fulltext.store.FullTextStore`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError


class Query:
    """Base class of full-text query nodes."""


@dataclass(frozen=True)
class TermQuery(Query):
    """Match documents whose ``field`` contains ``term``."""

    field: Optional[str]
    term: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.field or '_default'}:{self.term}"


@dataclass(frozen=True)
class PhraseQuery(Query):
    """Match documents whose ``field`` contains the terms consecutively."""

    field: Optional[str]
    terms: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f'{self.field or "_default"}:"{" ".join(self.terms)}"'


@dataclass(frozen=True)
class RangeQuery(Query):
    """Match documents whose ``field`` value lies within [low, high]."""

    field: str
    low: Optional[object]
    high: Optional[object]
    include_low: bool = True
    include_high: bool = True

    def __str__(self) -> str:  # pragma: no cover - trivial
        low = "*" if self.low is None else self.low
        high = "*" if self.high is None else self.high
        return f"{self.field}:[{low} TO {high}]"


@dataclass(frozen=True)
class BooleanQuery(Query):
    """AND / OR combination of sub-queries."""

    operator: str  # AND | OR
    operands: tuple[Query, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = f" {self.operator} ".join(str(o) for o in self.operands)
        return f"({inner})"


@dataclass(frozen=True)
class NotQuery(Query):
    """Negation of a sub-query."""

    operand: Query

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"NOT {self.operand}"


@dataclass(frozen=True)
class MatchAllQuery(Query):
    """Matches every document (``*:*``)."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "*:*"


_QUERY_TOKEN_RE = re.compile(
    r"""
      (?P<phrase>"[^"]*")
    | (?P<range>\[[^\]]*\])
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<colon>:)
    | (?P<matchall>\*:\*|\*)
    | (?P<word>[^\s():]+)
    """,
    re.VERBOSE,
)

_KEYWORD_OPERATORS = {"AND", "OR", "NOT"}


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query` tree."""
    tokens = _tokenize(text)
    if not tokens:
        return MatchAllQuery()
    parser = _QueryParser(tokens)
    query = parser.parse_or()
    parser.expect_end()
    return query


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _QUERY_TOKEN_RE.match(text, position)
        if not match:
            raise ParseError(f"cannot tokenise query near {text[position:position + 15]!r}",
                             position=position)
        kind = match.lastgroup or ""
        tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _QueryParser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._index += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            raise ParseError(f"unexpected trailing token {self._peek()[1]!r}")

    # precedence: OR < AND < NOT < primary
    def parse_or(self) -> Query:
        operands = [self.parse_and()]
        while True:
            token = self._peek()
            if token and token[0] == "word" and token[1].upper() == "OR":
                self._next()
                operands.append(self.parse_and())
            else:
                break
        if len(operands) == 1:
            return operands[0]
        return BooleanQuery("OR", tuple(operands))

    def parse_and(self) -> Query:
        operands = [self.parse_not()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token[0] == "word" and token[1].upper() == "AND":
                self._next()
                operands.append(self.parse_not())
            elif token[0] == "word" and token[1].upper() == "OR":
                break
            elif token[0] in ("word", "phrase", "lparen", "matchall"):
                # Implicit AND between adjacent clauses (Lucene default is OR,
                # but AND matches the conjunctive spirit of CMQs).
                operands.append(self.parse_not())
            else:
                break
        if len(operands) == 1:
            return operands[0]
        return BooleanQuery("AND", tuple(operands))

    def parse_not(self) -> Query:
        token = self._peek()
        if token and token[0] == "word" and token[1].upper() == "NOT":
            self._next()
            return NotQuery(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Query:
        token = self._next()
        kind, text = token
        if kind == "lparen":
            query = self.parse_or()
            closing = self._next()
            if closing[0] != "rparen":
                raise ParseError("expected )")
            return query
        if kind == "matchall":
            return MatchAllQuery()
        if kind == "phrase":
            return PhraseQuery(field=None, terms=tuple(text[1:-1].split()))
        if kind == "word":
            next_token = self._peek()
            if next_token and next_token[0] == "colon":
                self._next()
                return self._parse_field_clause(field=text)
            return TermQuery(field=None, term=text)
        raise ParseError(f"unexpected token {text!r}")

    def _parse_field_clause(self, field: str) -> Query:
        token = self._next()
        kind, text = token
        if kind == "phrase":
            return PhraseQuery(field=field, terms=tuple(text[1:-1].split()))
        if kind == "range":
            return _parse_range(field, text)
        if kind == "matchall":
            return TermQuery(field=field, term="*")
        if kind == "word":
            return TermQuery(field=field, term=text)
        raise ParseError(f"unexpected token {text!r} after {field}:")


def _parse_range(field: str, text: str) -> RangeQuery:
    inner = text[1:-1].strip()
    parts = re.split(r"\s+TO\s+", inner, flags=re.IGNORECASE)
    if len(parts) != 2:
        raise ParseError(f"malformed range query {text!r}")
    low = _range_bound(parts[0])
    high = _range_bound(parts[1])
    return RangeQuery(field=field, low=low, high=high)


def _range_bound(text: str) -> object | None:
    text = text.strip()
    if text == "*" or not text:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
