"""Full-text substrate: a Solr-like in-memory document store.

Plays the role of the Apache Solr instances holding the tweet and
Facebook-post collections of the paper's demonstration dataset.
"""

from repro.fulltext.analysis import (
    AnalyzedText,
    Analyzer,
    ENGLISH_STOPWORDS,
    FRENCH_STOPWORDS,
    extract_hashtags,
    extract_mentions,
    normalize,
    stem,
    tokenize,
)
from repro.fulltext.document import Document, make_document
from repro.fulltext.index import InvertedIndex, Posting
from repro.fulltext.query import (
    BooleanQuery,
    MatchAllQuery,
    NotQuery,
    PhraseQuery,
    Query,
    RangeQuery,
    TermQuery,
    parse_query,
)
from repro.fulltext.scoring import BM25Parameters, bm25_score, tf_idf_score
from repro.fulltext.store import (
    FieldConfig,
    FullTextStore,
    SearchHit,
    SearchResult,
    facebook_store,
    tweet_store,
)

__all__ = [
    "AnalyzedText",
    "Analyzer",
    "ENGLISH_STOPWORDS",
    "FRENCH_STOPWORDS",
    "extract_hashtags",
    "extract_mentions",
    "normalize",
    "stem",
    "tokenize",
    "Document",
    "make_document",
    "InvertedIndex",
    "Posting",
    "BooleanQuery",
    "MatchAllQuery",
    "NotQuery",
    "PhraseQuery",
    "Query",
    "RangeQuery",
    "TermQuery",
    "parse_query",
    "BM25Parameters",
    "bm25_score",
    "tf_idf_score",
    "FieldConfig",
    "FullTextStore",
    "SearchHit",
    "SearchResult",
    "facebook_store",
    "tweet_store",
]
