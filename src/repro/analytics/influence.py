"""Influential-tweet ranking (demonstration scenario 2).

Scenario (2) shows "the most influential tweets on this topic"; influence
is driven by the engagement counters the Solr instance indexes (retweets,
favourites, author followers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class InfluentialTweet:
    """One ranked tweet."""

    text: str
    author: str
    group: str
    retweets: int
    favorites: int
    score: float


def influence_score(retweets: int, favorites: int, followers: int = 0,
                    retweet_weight: float = 2.0, favorite_weight: float = 1.0,
                    follower_weight: float = 0.001) -> float:
    """Simple linear influence score combining engagement counters."""
    return (retweet_weight * max(0, retweets)
            + favorite_weight * max(0, favorites)
            + follower_weight * max(0, followers))


def rank_influential(tweets: Iterable[dict], top: int = 10,
                     text_key: str = "text", author_key: str = "author",
                     group_key: str = "group", retweet_key: str = "retweet_count",
                     favorite_key: str = "favorite_count",
                     followers_key: str = "followers_count") -> list[InfluentialTweet]:
    """Rank tweet records (dictionaries) by influence score."""
    ranked = []
    for tweet in tweets:
        retweets = int(tweet.get(retweet_key) or 0)
        favorites = int(tweet.get(favorite_key) or 0)
        followers = int(tweet.get(followers_key) or 0)
        ranked.append(InfluentialTweet(
            text=str(tweet.get(text_key, "")),
            author=str(tweet.get(author_key, "")),
            group=str(tweet.get(group_key, "")),
            retweets=retweets,
            favorites=favorites,
            score=influence_score(retweets, favorites, followers),
        ))
    ranked.sort(key=lambda t: (-t.score, t.author, t.text))
    return ranked[:top]


def per_group_influential(tweets: Iterable[dict], top_per_group: int = 3,
                          **keys) -> dict[str, list[InfluentialTweet]]:
    """The most influential tweets of each political group."""
    ranked = rank_influential(tweets, top=10 ** 9, **keys)
    by_group: dict[str, list[InfluentialTweet]] = {}
    for tweet in ranked:
        bucket = by_group.setdefault(tweet.group, [])
        if len(bucket) < top_per_group:
            bucket.append(tweet)
    return by_group
