"""Vocabulary analysis with exponentiated pointwise mutual information.

Demonstration scenario (2) of the paper compares the vocabulary used by
different parties on a topic: all terms ``w`` used by each party ``P`` in
a set of tweets ``Q`` (the result of a mixed query) are ranked by their
exponentiated PMI, "comparing the probability of w in the party to its
global probability in the entire corpus", with Maximum Likelihood
Estimation::

    PMI(w, Q) = ( Σ_{t∈P} n_tw / Σ_{t∈P} n_t ) * ( N_Q / n_Qw )

where ``n_tw`` is the count of word ``w`` in tweet ``t``, ``n_t`` the
number of words in tweet ``t``, ``N_Q`` the total number of words in ``Q``
and ``n_Qw`` the count of ``w`` in ``Q``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.fulltext.analysis import Analyzer


@dataclass(frozen=True)
class ScoredTerm:
    """One vocabulary term with its exponentiated PMI score."""

    term: str
    pmi: float
    group_count: int
    corpus_count: int


@dataclass
class GroupVocabulary:
    """Ranked vocabulary of one group (party) over a corpus."""

    group: str
    terms: list[ScoredTerm] = field(default_factory=list)

    def top(self, k: int = 10) -> list[ScoredTerm]:
        """The ``k`` highest-PMI terms."""
        return self.terms[:k]

    def term_scores(self) -> dict[str, float]:
        """Mapping term -> PMI."""
        return {t.term: t.pmi for t in self.terms}


class PMIVocabularyAnalyzer:
    """Computes per-group PMI-ranked vocabularies from a tweet corpus."""

    def __init__(self, analyzer: Analyzer | None = None, min_group_count: int = 2,
                 min_corpus_count: int = 2):
        self.analyzer = analyzer or Analyzer()
        self.min_group_count = min_group_count
        self.min_corpus_count = min_corpus_count

    # ------------------------------------------------------------------
    def analyze(self, documents: Iterable[tuple[str, str]]) -> dict[str, GroupVocabulary]:
        """Analyse a corpus of ``(group, text)`` pairs.

        Returns, per group, its vocabulary ranked by exponentiated PMI.
        Terms occurring fewer than ``min_group_count`` times in the group
        (or ``min_corpus_count`` in the corpus) are dropped — rare terms
        would otherwise dominate MLE-based PMI.
        """
        group_word_counts: dict[str, Counter] = defaultdict(Counter)
        group_total_words: dict[str, int] = defaultdict(int)
        corpus_counts: Counter = Counter()
        corpus_total = 0

        for group, text in documents:
            stems = [s for s in self.analyzer.stems(text) if not s.startswith("#")]
            group_word_counts[group].update(stems)
            group_total_words[group] += len(stems)
            corpus_counts.update(stems)
            corpus_total += len(stems)

        vocabularies: dict[str, GroupVocabulary] = {}
        for group, counts in group_word_counts.items():
            scored = []
            total_in_group = group_total_words[group]
            if total_in_group == 0 or corpus_total == 0:
                vocabularies[group] = GroupVocabulary(group=group)
                continue
            for term, group_count in counts.items():
                corpus_count = corpus_counts[term]
                if group_count < self.min_group_count or corpus_count < self.min_corpus_count:
                    continue
                probability_in_group = group_count / total_in_group
                probability_in_corpus = corpus_count / corpus_total
                pmi = probability_in_group / probability_in_corpus
                scored.append(ScoredTerm(term=term, pmi=pmi, group_count=group_count,
                                         corpus_count=corpus_count))
            scored.sort(key=lambda t: (-t.pmi, -t.group_count, t.term))
            vocabularies[group] = GroupVocabulary(group=group, terms=scored)
        return vocabularies

    def analyze_weekly(self, documents: Iterable[tuple[str, str, str]]
                       ) -> dict[str, dict[str, GroupVocabulary]]:
        """Analyse ``(week, group, text)`` triples, one analysis per week.

        This powers the Figure 3 reproduction: the weekly evolution of each
        political group's vocabulary on a topic.
        """
        by_week: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for week, group, text in documents:
            by_week[week].append((group, text))
        return {week: self.analyze(docs) for week, docs in sorted(by_week.items())}


def top_terms_table(vocabularies: dict[str, GroupVocabulary], k: int = 8) -> str:
    """Render the top-k PMI terms of every group as a fixed-width table."""
    groups = sorted(vocabularies)
    width = max([12] + [len(g) for g in groups]) + 2
    lines = ["".join(g.ljust(width) for g in groups)]
    for rank in range(k):
        cells = []
        for group in groups:
            terms = vocabularies[group].terms
            cells.append(terms[rank].term if rank < len(terms) else "")
        lines.append("".join(cell.ljust(width) for cell in cells))
    return "\n".join(lines)
