"""Weekly timeline utilities for the Figure 3 reproduction.

The paper groups the state-of-emergency tweets by week to show how the
public discourse evolves (factual → institutional → objections →
vigilance).  This module provides ISO-week bucketing of timestamped
records and drift measures between consecutive weeks' vocabularies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import date, datetime, timedelta
from typing import Iterable, Sequence

from repro.analytics.pmi import GroupVocabulary


def week_of(timestamp: str | date | datetime) -> str:
    """Return the ISO week label (``YYYY-Www``) of a timestamp.

    String timestamps accept ``YYYY-MM-DD`` (optionally followed by a time
    component) and the Twitter ``created_at`` style used in Figure 2.
    """
    moment = _coerce_date(timestamp)
    iso = moment.isocalendar()
    return f"{iso[0]}-W{iso[1]:02d}"


def week_index(reference: str | date | datetime, timestamp: str | date | datetime) -> int:
    """Zero-based week number of ``timestamp`` counted from ``reference``."""
    start = _coerce_date(reference)
    moment = _coerce_date(timestamp)
    return (moment - start).days // 7


def bucket_by_week(records: Iterable[dict], timestamp_key: str = "created_at") -> dict[str, list[dict]]:
    """Group records by ISO week of their timestamp field."""
    buckets: dict[str, list[dict]] = defaultdict(list)
    for record in records:
        timestamp = record.get(timestamp_key)
        if timestamp is None:
            continue
        buckets[week_of(timestamp)].append(record)
    return dict(sorted(buckets.items()))


@dataclass(frozen=True)
class WeeklyDrift:
    """Vocabulary drift between two consecutive weeks for one group."""

    group: str
    week_from: str
    week_to: str
    jaccard: float
    new_terms: tuple[str, ...]
    dropped_terms: tuple[str, ...]


def vocabulary_drift(weekly: dict[str, dict[str, GroupVocabulary]],
                     top_k: int = 10) -> list[WeeklyDrift]:
    """Measure how each group's top-k vocabulary changes week over week.

    A small Jaccard similarity between consecutive weeks is the signal the
    paper's Figure 3 narrative describes (the discourse moves from factual
    to institutional to critical vocabulary).
    """
    weeks = sorted(weekly)
    drifts: list[WeeklyDrift] = []
    for previous, current in zip(weeks, weeks[1:]):
        groups = set(weekly[previous]) | set(weekly[current])
        for group in sorted(groups):
            before = {t.term for t in weekly[previous].get(group, GroupVocabulary(group)).top(top_k)}
            after = {t.term for t in weekly[current].get(group, GroupVocabulary(group)).top(top_k)}
            union = before | after
            jaccard = (len(before & after) / len(union)) if union else 1.0
            drifts.append(WeeklyDrift(
                group=group, week_from=previous, week_to=current, jaccard=jaccard,
                new_terms=tuple(sorted(after - before)),
                dropped_terms=tuple(sorted(before - after)),
            ))
    return drifts


def week_starts(start: str | date | datetime, weeks: int) -> list[date]:
    """Return the first day of ``weeks`` consecutive weeks from ``start``."""
    first = _coerce_date(start)
    return [first + timedelta(weeks=i) for i in range(weeks)]


def _coerce_date(timestamp: str | date | datetime) -> date:
    if isinstance(timestamp, datetime):
        return timestamp.date()
    if isinstance(timestamp, date):
        return timestamp
    text = str(timestamp).strip()
    for fmt in ("%Y-%m-%d", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S",
                "%a %b %d %H:%M:%S %z %Y"):
        try:
            return datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    # Last resort: the date part of an ISO-ish string.
    try:
        return datetime.strptime(text[:10], "%Y-%m-%d").date()
    except ValueError as exc:
        raise ValueError(f"cannot interpret timestamp {timestamp!r}") from exc
