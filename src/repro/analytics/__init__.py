"""Analytics and visualisation: PMI vocabularies, tag clouds, timelines.

Reproduces the content of the paper's Figure 3 (weekly, per-party,
PMI-ranked tag clouds) and the influential-tweet ranking of demonstration
scenario (2).
"""

from repro.analytics.influence import (
    InfluentialTweet,
    influence_score,
    per_group_influential,
    rank_influential,
)
from repro.analytics.pmi import (
    GroupVocabulary,
    PMIVocabularyAnalyzer,
    ScoredTerm,
    top_terms_table,
)
from repro.analytics.tagcloud import (
    DEFAULT_COLOR,
    GROUP_COLORS,
    TagCloud,
    TagCloudEntry,
    build_tag_cloud,
    weekly_tag_clouds,
)
from repro.analytics.timeline import (
    WeeklyDrift,
    bucket_by_week,
    vocabulary_drift,
    week_index,
    week_of,
    week_starts,
)

__all__ = [
    "InfluentialTweet",
    "influence_score",
    "per_group_influential",
    "rank_influential",
    "GroupVocabulary",
    "PMIVocabularyAnalyzer",
    "ScoredTerm",
    "top_terms_table",
    "DEFAULT_COLOR",
    "GROUP_COLORS",
    "TagCloud",
    "TagCloudEntry",
    "build_tag_cloud",
    "weekly_tag_clouds",
    "WeeklyDrift",
    "bucket_by_week",
    "vocabulary_drift",
    "week_index",
    "week_of",
    "week_starts",
]
