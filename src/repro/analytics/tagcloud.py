"""Tag-cloud rendering of PMI-ranked vocabularies (Figure 3).

The paper's Figure 3 shows "the weekly evolution of French politician
vocabulary on the state of emergency ..., colored according to the
political group of the author".  We reproduce the content of the figure:
a tag cloud per week where each term's size is driven by its PMI score
and its colour by the political group that uses it most distinctively.
Two renderers are provided: a terminal-friendly text rendering and an SVG
rendering suitable for inclusion in a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analytics.pmi import GroupVocabulary

#: Colours of the paper's Figure 3: extreme-left red, left pink, right blue,
#: extreme-right dark blue, ecologists green.
GROUP_COLORS = {
    "extreme-left": "#d62728",
    "left": "#ff7fbf",
    "right": "#1f77b4",
    "extreme-right": "#0b2a66",
    "ecologists": "#2ca02c",
    "center": "#9467bd",
}

#: Fallback colour for groups not in :data:`GROUP_COLORS`.
DEFAULT_COLOR = "#7f7f7f"


@dataclass(frozen=True)
class TagCloudEntry:
    """One term of a tag cloud."""

    term: str
    weight: float
    group: str
    color: str


@dataclass
class TagCloud:
    """A tag cloud: weighted, coloured terms for one corpus slice (e.g. a week)."""

    title: str
    entries: list[TagCloudEntry] = field(default_factory=list)

    def top(self, k: int = 20) -> list[TagCloudEntry]:
        """The ``k`` heaviest entries."""
        return sorted(self.entries, key=lambda e: -e.weight)[:k]

    def terms(self) -> set[str]:
        """The set of terms present in the cloud."""
        return {entry.term for entry in self.entries}

    def groups(self) -> set[str]:
        """The political groups contributing to the cloud."""
        return {entry.group for entry in self.entries}

    # ------------------------------------------------------------------
    def to_text(self, k: int = 20, columns: int = 4) -> str:
        """Terminal rendering: size buckets rendered as UPPER/Title/lower case."""
        entries = self.top(k)
        if not entries:
            return f"== {self.title} == (empty)"
        max_weight = max(e.weight for e in entries) or 1.0
        cells = []
        for entry in entries:
            ratio = entry.weight / max_weight
            if ratio > 0.66:
                text = entry.term.upper()
            elif ratio > 0.33:
                text = entry.term.title()
            else:
                text = entry.term.lower()
            cells.append(f"{text}[{entry.group[:3]}]")
        width = max(len(c) for c in cells) + 2
        lines = [f"== {self.title} =="]
        for start in range(0, len(cells), columns):
            row = cells[start:start + columns]
            lines.append("".join(cell.ljust(width) for cell in row))
        return "\n".join(lines)

    def to_svg(self, k: int = 20, width: int = 640, row_height: int = 28) -> str:
        """SVG rendering with font size proportional to weight and group colours."""
        entries = self.top(k)
        max_weight = max((e.weight for e in entries), default=1.0) or 1.0
        height = row_height * (len(entries) // 4 + 2)
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}">',
            f'<text x="10" y="20" font-size="16" font-weight="bold">{_escape(self.title)}</text>',
        ]
        x, y = 10, 50
        for entry in entries:
            size = 10 + int(14 * entry.weight / max_weight)
            estimated_width = int(size * 0.62 * len(entry.term)) + 12
            if x + estimated_width > width:
                x = 10
                y += row_height
            parts.append(
                f'<text x="{x}" y="{y}" font-size="{size}" fill="{entry.color}">'
                f"{_escape(entry.term)}</text>"
            )
            x += estimated_width
        parts.append("</svg>")
        return "\n".join(parts)


def build_tag_cloud(vocabularies: dict[str, GroupVocabulary], title: str,
                    terms_per_group: int = 6,
                    colors: dict[str, str] | None = None) -> TagCloud:
    """Build a tag cloud from per-group PMI vocabularies.

    Each group contributes its ``terms_per_group`` most distinctive terms;
    when the same term is distinctive for several groups, the group with
    the highest PMI keeps it (and provides the colour), matching the
    "colored according to the political group of the author" rendering.
    """
    colors = {**GROUP_COLORS, **(colors or {})}
    best_entry: dict[str, TagCloudEntry] = {}
    for group, vocabulary in vocabularies.items():
        color = colors.get(group, DEFAULT_COLOR)
        for scored in vocabulary.top(terms_per_group):
            existing = best_entry.get(scored.term)
            if existing is None or scored.pmi > existing.weight:
                best_entry[scored.term] = TagCloudEntry(term=scored.term, weight=scored.pmi,
                                                        group=group, color=color)
    return TagCloud(title=title, entries=sorted(best_entry.values(), key=lambda e: -e.weight))


def weekly_tag_clouds(weekly_vocabularies: dict[str, dict[str, GroupVocabulary]],
                      terms_per_group: int = 6,
                      colors: dict[str, str] | None = None) -> list[TagCloud]:
    """Build one tag cloud per week (the Figure 3 layout)."""
    return [build_tag_cloud(vocabularies, title=week, terms_per_group=terms_per_group,
                            colors=colors)
            for week, vocabularies in sorted(weekly_vocabularies.items())]


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))
