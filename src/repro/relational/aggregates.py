"""Aggregate function evaluation for GROUP BY queries."""

from __future__ import annotations

from typing import Iterable

from repro.errors import RelationalError
from repro.relational.ast import FunctionCall


def compute_aggregate(call: FunctionCall, scopes: Iterable[dict[str, object]]) -> object:
    """Compute one aggregate over a group of row scopes.

    ``COUNT(*)`` counts rows; other aggregates skip NULL inputs, matching
    SQL semantics.  ``DISTINCT`` is honoured for every aggregate.
    """
    name = call.name.upper()
    scopes = list(scopes)
    if call.star:
        if name != "COUNT":
            raise RelationalError(f"{name}(*) is not a valid aggregate")
        return len(scopes)
    if not call.arguments:
        raise RelationalError(f"aggregate {name} needs an argument")
    argument = call.arguments[0]
    values = [argument.evaluate(scope) for scope in scopes]
    values = [v for v in values if v is not None]
    if call.distinct:
        values = list(_stable_distinct(values))
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise RelationalError(f"unsupported aggregate {name}")


def _stable_distinct(values: list[object]) -> Iterable[object]:
    seen: set[object] = set()
    for value in values:
        if value not in seen:
            seen.add(value)
            yield value
