"""The relational database: a catalog of tables plus a SQL entry point.

A :class:`Database` plays the role of the INSEE or Ministry-of-Interior
sources of the paper: a self-contained system with its own query
capability (the SQL subset) that the mediator ships sub-queries to.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.core.deltas import DeltaJournal, RESET
from repro.errors import RelationalError, SchemaError
from repro.locks import RWLock
from repro.relational.ast import CreateTableStatement, InsertStatement, SelectStatement
from repro.relational.executor import ResultSet, SelectExecutor
from repro.relational.parser import parse_sql
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType, infer_type, parse_type


class Database:
    """A named collection of tables accepting SQL statements."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._catalog_version = 0
        #: One typed mutation log for the whole database: table inserts
        #: record into it (scoped by table name) under the *database*
        #: version scale, catalog changes as non-repairable resets.
        self._journal = DeltaJournal()
        # One lock for the catalog and every table, so a snapshot is a
        # consistent cut of the whole database.
        self._rwlock = RWLock()
        self._snapshot_state: tuple[int, "Database"] | None = None
        self._snapshot_lock = threading.Lock()

    @property
    def version(self) -> int:
        """Monotonic mutation counter over the catalog and every table."""
        return self._catalog_version + sum(t.version for t in self._tables.values())

    @property
    def journal(self) -> DeltaJournal:
        """The database-wide typed mutation log (shared with snapshots)."""
        return self._journal

    def deltas_since(self, version: int, upto: int | None = None):
        """The unbroken delta chain ``version -> upto`` (None on a gap)."""
        target = self.version if upto is None else upto
        return self._journal.since(version, target)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Register a new table from a schema object."""
        key = schema.name.lower()
        with self._rwlock.write_locked():
            if key in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists in {self.name!r}")
            pre = self.version
            table = Table(schema, lock=self._rwlock, journal=self._journal,
                          version_of=lambda: self.version)
            self._tables[key] = table
            self._catalog_version += 1
            self._journal.record(pre, pre + 1, RESET, scope=key)
            return table

    def create_table_from_rows(self, name: str, rows: Iterable[dict[str, object]],
                               primary_key: str | None = None,
                               foreign_keys: list[ForeignKey] | None = None) -> Table:
        """Create a table whose schema is inferred from dictionaries."""
        rows = list(rows)
        if not rows:
            raise SchemaError(f"cannot infer a schema for {name!r} from zero rows")
        column_types: dict[str, DataType] = {}
        for row in rows:
            for column, value in row.items():
                if value is None:
                    column_types.setdefault(column, DataType.TEXT)
                    continue
                inferred = infer_type(value)
                previous = column_types.get(column)
                if previous is None or previous is DataType.TEXT:
                    column_types[column] = inferred
                elif previous is DataType.INTEGER and inferred is DataType.FLOAT:
                    column_types[column] = DataType.FLOAT
        columns = [Column(name=c, data_type=t) for c, t in column_types.items()]
        schema = TableSchema(name=name, columns=columns, primary_key=primary_key,
                             foreign_keys=foreign_keys or [])
        with self._rwlock.write_locked():
            # Creation + load as one write section: a concurrent snapshot
            # sees either no table or the fully loaded one.
            table = self.create_table(schema)
            table.insert_many(rows)
        return table

    def table(self, name: str) -> Table:
        """Return a table by (case-insensitive) name."""
        table = self._tables.get(name.lower())
        if table is None:
            raise RelationalError(f"database {self.name!r} has no table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        """True when a table with ``name`` exists."""
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        """Return every table, in name order."""
        return [self._tables[k] for k in sorted(self._tables)]

    def table_names(self) -> list[str]:
        """Return the declared table names, in name order."""
        return [t.name for t in self.tables()]

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        with self._rwlock.write_locked():
            if name.lower() not in self._tables:
                raise RelationalError(f"database {self.name!r} has no table {name!r}")
            # Absorb the dropped table's mutation count so the database
            # version stays monotonic (it must never revisit an old value).
            pre = self.version
            self._catalog_version += 1 + self._tables[name.lower()].version
            del self._tables[name.lower()]
            self._journal.record(pre, pre + 1, RESET, scope=name.lower())

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    def snapshot(self) -> "Database":
        """A frozen, consistent copy of the whole database (memoised).

        Taken under the shared read lock, so no insert or catalog change
        can land between two table copies: the snapshot's version equals
        the live version at the moment of the cut.
        """
        with self._rwlock.read_locked():
            version = self._catalog_version + sum(
                t.version for t in self._tables.values())
            state = self._snapshot_state
            if state is not None and state[0] == version:
                return state[1]
            with self._snapshot_lock:
                state = self._snapshot_state
                if state is not None and state[0] == version:
                    return state[1]
                frozen = Database.__new__(Database)
                frozen.name = self.name
                frozen._catalog_version = self._catalog_version
                frozen._journal = self._journal
                frozen._rwlock = RWLock()
                frozen._tables = {
                    key: table._copy_unlocked(lock=frozen._rwlock)
                    for key, table in self._tables.items()
                }
                frozen._snapshot_state = (version, frozen)
                frozen._snapshot_lock = threading.Lock()
                self._snapshot_state = (version, frozen)
                return frozen

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str, bindings: dict[str, object] | None = None) -> ResultSet:
        """Parse and run one SQL statement.

        SELECT returns a populated :class:`ResultSet`; CREATE TABLE and
        INSERT return an empty result with a ``rowcount``-style single
        column describing the effect.
        """
        statement = parse_sql(sql)
        if isinstance(statement, SelectStatement):
            return self.execute_select(statement, bindings)
        if isinstance(statement, CreateTableStatement):
            self._execute_create(statement)
            return ResultSet(columns=["status"], rows=[("created",)])
        if isinstance(statement, InsertStatement):
            count = self._execute_insert(statement)
            return ResultSet(columns=["inserted"], rows=[(count,)])
        raise RelationalError(f"unsupported statement type: {type(statement).__name__}")

    def execute_select(self, statement: SelectStatement,
                       bindings: dict[str, object] | None = None) -> ResultSet:
        """Run an already-parsed SELECT statement."""
        executor = SelectExecutor({t.name: t for t in self.tables()})
        return executor.execute(statement, bindings)

    def query(self, sql: str, bindings: dict[str, object] | None = None) -> list[dict[str, object]]:
        """Run a SELECT and return rows as dictionaries (convenience)."""
        return self.execute(sql, bindings).to_dicts()

    # ------------------------------------------------------------------
    def _execute_create(self, statement: CreateTableStatement) -> None:
        columns = []
        primary_key = None
        for name, type_name, not_null, primary in statement.columns:
            columns.append(Column(name=name, data_type=parse_type(type_name),
                                  nullable=not (not_null or primary)))
            if primary:
                primary_key = name
        foreign_keys = [ForeignKey(column=c, referenced_table=t, referenced_column=rc)
                        for c, t, rc in statement.foreign_keys]
        schema = TableSchema(name=statement.name, columns=columns,
                             primary_key=primary_key, foreign_keys=foreign_keys)
        self.create_table(schema)

    def _execute_insert(self, statement: InsertStatement) -> int:
        table = self.table(statement.table)
        if statement.columns:
            rows: list = [dict(zip(statement.columns, row))
                          for row in statement.rows]
        else:
            rows = list(statement.rows)
        # One statement = one batch = one version bump (insert_many).
        return table.insert_many(rows)

    def statistics(self) -> dict[str, dict[str, object]]:
        """Per-table statistics, used by digests and the planner."""
        return {t.name: t.statistics() for t in self.tables()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Database(name={self.name!r}, tables={self.table_names()})"
