"""Execution of parsed SELECT statements against a :class:`Database`.

The executor produces :class:`ResultSet` objects: a list of output column
names plus rows (tuples).  Joins are evaluated with a hash join when the
ON condition is a simple equality between two column references, falling
back to a nested loop otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import RelationalError
from repro.relational.aggregates import compute_aggregate
from repro.relational.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Join,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.relational.table import Table


@dataclass
class ResultSet:
    """Columnar query result: output names plus row tuples."""

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[object]:
        """Return one output column as a list."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise RelationalError(f"result has no column {name!r}") from exc
        return [row[index] for row in self.rows]


class SelectExecutor:
    """Evaluates a :class:`SelectStatement` against a table catalog."""

    def __init__(self, tables: dict[str, Table]):
        self._tables = {name.lower(): table for name, table in tables.items()}

    # ------------------------------------------------------------------
    def execute(self, statement: SelectStatement,
                bindings: dict[str, object] | None = None) -> ResultSet:
        """Run ``statement``; ``bindings`` pre-binds named parameters.

        Parameter binding is used by the mediator's bind joins: a WHERE
        condition may reference ``:param`` style columns that are supplied
        per call.  We model them as extra scope entries.
        """
        scopes = self._build_scopes(statement, bindings or {})
        if statement.where is not None:
            scopes = [s for s in scopes if _is_true(statement.where.evaluate(s))]

        if self._needs_aggregation(statement):
            rows, columns = self._aggregate(statement, scopes)
        else:
            rows, columns = self._project(statement, scopes)

        if statement.distinct:
            rows = list(dict.fromkeys(rows))
        if statement.order_by:
            rows = self._order(statement, rows, columns)
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return ResultSet(columns=columns, rows=rows)

    # ------------------------------------------------------------------
    # FROM / JOIN
    # ------------------------------------------------------------------
    def _build_scopes(self, statement: SelectStatement,
                      bindings: dict[str, object]) -> list[dict[str, object]]:
        base_bindings = {k.lower(): v for k, v in bindings.items()}
        if statement.table is None:
            return [dict(base_bindings)]
        scopes = [dict(base_bindings, **scope) for scope in self._table_scopes(statement.table)]
        for join in statement.joins:
            scopes = self._apply_join(scopes, join)
        return scopes

    def _table_scopes(self, ref: TableRef) -> list[dict[str, object]]:
        table = self._table(ref.name)
        alias = ref.effective_alias.lower()
        names = [c.lower() for c in table.schema.column_names()]
        scopes = []
        for row in table.rows:
            scope = {f"{alias}.{name}": value for name, value in zip(names, row)}
            scopes.append(scope)
        return scopes

    def _apply_join(self, left_scopes: list[dict[str, object]], join: Join) -> list[dict[str, object]]:
        right_scopes = self._table_scopes(join.table)
        condition = join.condition
        equi = _equi_join_columns(condition) if condition is not None else None

        joined: list[dict[str, object]] = []
        if equi is not None:
            left_key, right_key = self._resolve_equi_sides(equi, left_scopes, right_scopes)
            if left_key is not None and right_key is not None:
                buckets: dict[object, list[dict[str, object]]] = {}
                for rs in right_scopes:
                    buckets.setdefault(rs.get(right_key), []).append(rs)
                for ls in left_scopes:
                    matches = buckets.get(ls.get(left_key), [])
                    for rs in matches:
                        joined.append({**ls, **rs})
                    if not matches and join.kind == "LEFT":
                        joined.append({**ls, **{k: None for k in (right_scopes[0] if right_scopes else {})}})
                return joined

        # Fallback: nested loop.
        right_columns = list(right_scopes[0].keys()) if right_scopes else []
        for ls in left_scopes:
            matched = False
            for rs in right_scopes:
                combined = {**ls, **rs}
                if condition is None or _is_true(condition.evaluate(combined)):
                    joined.append(combined)
                    matched = True
            if not matched and join.kind == "LEFT":
                joined.append({**ls, **{k: None for k in right_columns}})
        return joined

    def _resolve_equi_sides(self, equi: tuple[ColumnRef, ColumnRef],
                            left_scopes: list[dict[str, object]],
                            right_scopes: list[dict[str, object]]) -> tuple[str | None, str | None]:
        """Figure out which side of an equality belongs to which input."""
        left_columns = set(left_scopes[0]) if left_scopes else set()
        right_columns = set(right_scopes[0]) if right_scopes else set()
        first, second = equi
        first_key = _scope_key(first, left_columns) or _scope_key(first, right_columns)
        second_key = _scope_key(second, left_columns) or _scope_key(second, right_columns)
        if first_key in left_columns and second_key in right_columns:
            return first_key, second_key
        if second_key in left_columns and first_key in right_columns:
            return second_key, first_key
        return None, None

    # ------------------------------------------------------------------
    # Projection / aggregation
    # ------------------------------------------------------------------
    def _project(self, statement: SelectStatement,
                 scopes: list[dict[str, object]]) -> tuple[list[tuple], list[str]]:
        items = self._expand_stars(statement, scopes)
        columns = [item.output_name() for item in items]
        rows = [tuple(item.expression.evaluate(scope) for item in items) for scope in scopes]
        return rows, columns

    def _needs_aggregation(self, statement: SelectStatement) -> bool:
        if statement.group_by:
            return True
        return any(item.expression.aggregates() for item in statement.items if not item.star)

    def _aggregate(self, statement: SelectStatement,
                   scopes: list[dict[str, object]]) -> tuple[list[tuple], list[str]]:
        items = self._expand_stars(statement, scopes)
        columns = [item.output_name() for item in items]

        groups: dict[tuple, list[dict[str, object]]] = {}
        if statement.group_by:
            for scope in scopes:
                key = tuple(expr.evaluate(scope) for expr in statement.group_by)
                groups.setdefault(key, []).append(scope)
        else:
            groups[()] = list(scopes)

        aggregate_calls: list[FunctionCall] = []
        for item in items:
            aggregate_calls.extend(item.expression.aggregates())
        if statement.having is not None:
            aggregate_calls.extend(statement.having.aggregates())

        rows: list[tuple] = []
        for key, group_scopes in groups.items():
            representative = dict(group_scopes[0]) if group_scopes else {}
            for call in aggregate_calls:
                representative[call.result_key()] = compute_aggregate(call, group_scopes)
            if statement.having is not None and not _is_true(statement.having.evaluate(representative)):
                continue
            rows.append(tuple(item.expression.evaluate(representative) for item in items))
        return rows, columns

    def _expand_stars(self, statement: SelectStatement,
                      scopes: list[dict[str, object]]) -> list[SelectItem]:
        items: list[SelectItem] = []
        available = list(scopes[0].keys()) if scopes else self._default_columns(statement)
        for item in statement.items:
            if not item.star:
                items.append(item)
                continue
            for key in available:
                if item.star_table and not key.startswith(item.star_table.lower() + "."):
                    continue
                name = key.split(".", 1)[1] if "." in key else key
                table = key.split(".", 1)[0] if "." in key else None
                items.append(SelectItem(expression=ColumnRef(name=name, table=table), alias=name))
        if not items:
            raise RelationalError("SELECT produced no output columns")
        return items

    def _default_columns(self, statement: SelectStatement) -> list[str]:
        keys: list[str] = []
        refs = [statement.table] if statement.table else []
        refs.extend(join.table for join in statement.joins)
        for ref in refs:
            table = self._table(ref.name)
            alias = ref.effective_alias.lower()
            keys.extend(f"{alias}.{c.lower()}" for c in table.schema.column_names())
        return keys

    # ------------------------------------------------------------------
    def _order(self, statement: SelectStatement, rows: list[tuple],
               columns: list[str]) -> list[tuple]:
        lowered = [c.lower() for c in columns]

        def sort_key(row: tuple):
            key = []
            scope = dict(zip(lowered, row))
            for item in statement.order_by:
                expression = item.expression
                if isinstance(expression, ColumnRef) and expression.qualified.lower() in lowered:
                    value = row[lowered.index(expression.qualified.lower())]
                else:
                    try:
                        value = expression.evaluate(scope)
                    except RelationalError:
                        value = None
                key.append(_Reversible(value, item.descending))
            return tuple(key)

        return sorted(rows, key=sort_key)

    def _table(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise RelationalError(f"unknown table {name!r}")
        return table


class _Reversible:
    """Sort key wrapper supporting per-item descending order and NULLs."""

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_Reversible") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        try:
            less = a < b
        except TypeError:
            less = str(a) < str(b)
        return (not less and a != b) if self.descending else less

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversible) and self.value == other.value


def _is_true(value: object) -> bool:
    return bool(value) and value is not None


def _equi_join_columns(condition: Expression) -> tuple[ColumnRef, ColumnRef] | None:
    """Detect ``a.x = b.y`` conditions eligible for a hash join."""
    if (isinstance(condition, BinaryOp) and condition.operator == "="
            and isinstance(condition.left, ColumnRef) and isinstance(condition.right, ColumnRef)):
        return condition.left, condition.right
    return None


def _scope_key(ref: ColumnRef, available: Iterable[str]) -> str | None:
    """Resolve a column reference to a scope key among ``available``."""
    available = set(available)
    if ref.table:
        key = ref.qualified.lower()
        return key if key in available else None
    suffix = "." + ref.name.lower()
    matches = [k for k in available if k.endswith(suffix)]
    return matches[0] if len(matches) == 1 else None
