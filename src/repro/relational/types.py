"""Column data types of the relational substrate.

The INSEE-like and election sources the paper queries are plain SQL
tables; we support the small set of scalar types those need, with explicit
coercion rules so CSV imports and expression evaluation are deterministic.
"""

from __future__ import annotations

import enum
from datetime import date, datetime

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TYPE_ALIASES = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "FLOAT": DataType.FLOAT,
    "REAL": DataType.FLOAT,
    "DOUBLE": DataType.FLOAT,
    "DECIMAL": DataType.FLOAT,
    "NUMERIC": DataType.FLOAT,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "DATETIME": DataType.DATE,
    "TIMESTAMP": DataType.DATE,
}


def parse_type(name: str) -> DataType:
    """Parse a SQL type name (``VARCHAR(30)`` style sizes are ignored)."""
    base = name.strip().upper().split("(", 1)[0].strip()
    if base not in _TYPE_ALIASES:
        raise SchemaError(f"unsupported column type: {name!r}")
    return _TYPE_ALIASES[base]


def coerce(value: object, data_type: DataType) -> object:
    """Coerce ``value`` to ``data_type``; ``None`` passes through as NULL."""
    if value is None:
        return None
    try:
        if data_type is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str) and value.strip() == "":
                return None
            return int(float(value)) if isinstance(value, str) else int(value)
        if data_type is DataType.FLOAT:
            if isinstance(value, str) and value.strip() == "":
                return None
            return float(value)
        if data_type is DataType.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "1", "t", "yes", "oui"):
                    return True
                if lowered in ("false", "0", "f", "no", "non", ""):
                    return False
                raise ValueError(value)
            return bool(value)
        if data_type is DataType.DATE:
            return _coerce_date(value)
        return str(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {data_type}") from exc


def infer_type(value: object) -> DataType:
    """Infer the narrowest :class:`DataType` describing ``value``."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, (date, datetime)):
        return DataType.DATE
    return DataType.TEXT


def _coerce_date(value: object) -> date:
    if isinstance(value, datetime):
        return value.date()
    if isinstance(value, date):
        return value
    if isinstance(value, str):
        text = value.strip()
        for fmt in ("%Y-%m-%d", "%d/%m/%Y", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S"):
            try:
                return datetime.strptime(text, fmt).date()
            except ValueError:
                continue
    raise ValueError(f"not a date: {value!r}")
