"""Relational substrate: an in-memory SQL-subset engine.

Plays the role of the INSEE / Ministry-of-Interior databases the paper's
mediator ships sub-queries to.
"""

from repro.relational.ast import (
    BinaryOp,
    ColumnRef,
    CreateTableStatement,
    Expression,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    Join,
    LiteralValue,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    UnaryOp,
)
from repro.relational.csv_io import dump_csv, load_csv
from repro.relational.database import Database
from repro.relational.executor import ResultSet, SelectExecutor
from repro.relational.parser import parse_sql, tokenize
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.table import Index, Table
from repro.relational.types import DataType, coerce, infer_type, parse_type

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "CreateTableStatement",
    "Expression",
    "FunctionCall",
    "InList",
    "InsertStatement",
    "IsNull",
    "Join",
    "LiteralValue",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "UnaryOp",
    "dump_csv",
    "load_csv",
    "Database",
    "ResultSet",
    "SelectExecutor",
    "parse_sql",
    "tokenize",
    "Column",
    "ForeignKey",
    "TableSchema",
    "Index",
    "Table",
    "DataType",
    "coerce",
    "infer_type",
    "parse_type",
]
