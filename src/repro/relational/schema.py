"""Relational schemas: columns, primary keys and foreign keys.

Foreign keys matter beyond integrity checking: the digest builder turns
each key/foreign-key constraint into an edge of the source's digest graph
(paper §2.2), which is what the keyword search walks to find join paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.relational.types import DataType, coerce


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    data_type: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint ``column -> referenced_table.referenced_column``."""

    column: str
    referenced_table: str
    referenced_column: str


@dataclass
class TableSchema:
    """The schema of one table."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [c.name.lower() for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and not self.has_column(self.primary_key):
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if not self.has_column(fk.column):
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    # ------------------------------------------------------------------
    def column_names(self) -> list[str]:
        """Return the column names in declaration order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """Case-insensitive column existence test."""
        return any(c.name.lower() == name.lower() for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the column definition for ``name`` (case-insensitive)."""
        for c in self.columns:
            if c.name.lower() == name.lower():
                return c
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        """Return the positional index of column ``name``."""
        for index, c in enumerate(self.columns):
            if c.name.lower() == name.lower():
                return index
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def coerce_row(self, values: dict[str, object] | list[object] | tuple) -> tuple:
        """Validate and coerce an input row into a storage tuple.

        Dict inputs may omit nullable columns; positional inputs must cover
        every column.
        """
        if isinstance(values, dict):
            lowered = {k.lower(): v for k, v in values.items()}
            unknown = set(lowered) - {c.name.lower() for c in self.columns}
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
                )
            raw = [lowered.get(c.name.lower()) for c in self.columns]
        else:
            raw = list(values)
            if len(raw) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(self.columns)} values, got {len(raw)}"
                )
        row = []
        for column, value in zip(self.columns, raw):
            coerced = coerce(value, column.data_type)
            if coerced is None and not column.nullable:
                raise SchemaError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            row.append(coerced)
        return tuple(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cols = ", ".join(f"{c.name} {c.data_type}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
