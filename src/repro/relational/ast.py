"""Abstract syntax tree and expression evaluation for the SQL subset.

Expressions are evaluated against *row scopes*: dictionaries mapping
(optionally qualified) column names to values.  The same expression nodes
are reused by the executor's WHERE/HAVING/ON evaluation and by projection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import RelationalError


class Expression:
    """Base class of every scalar expression node."""

    def evaluate(self, scope: dict[str, object]) -> object:
        """Evaluate the expression against a row scope."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Return the column names referenced by the expression."""
        return set()

    def aggregates(self) -> list["FunctionCall"]:
        """Return the aggregate calls contained in the expression."""
        return []


@dataclass(frozen=True)
class LiteralValue(Expression):
    """A constant (number, string, boolean or NULL)."""

    value: object

    def evaluate(self, scope: dict[str, object]) -> object:
        return self.value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally qualified by a table alias."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def evaluate(self, scope: dict[str, object]) -> object:
        key = self.qualified.lower()
        if key in scope:
            return scope[key]
        # Unqualified lookup: accept a unique suffix match "alias.name".
        if self.table is None:
            suffix = "." + self.name.lower()
            matches = [k for k in scope if k.endswith(suffix)]
            if len(matches) == 1:
                return scope[matches[0]]
            if len(matches) > 1:
                raise RelationalError(f"ambiguous column reference {self.name!r}")
        raise RelationalError(f"unknown column {self.qualified!r}")

    def columns(self) -> set[str]:
        return {self.qualified.lower()}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qualified


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation (comparison, arithmetic, AND/OR, LIKE)."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, scope: dict[str, object]) -> object:
        op = self.operator
        if op == "AND":
            return bool(self.left.evaluate(scope)) and bool(self.right.evaluate(scope))
        if op == "OR":
            return bool(self.left.evaluate(scope)) or bool(self.right.evaluate(scope))
        left = self.left.evaluate(scope)
        right = self.right.evaluate(scope)
        if op in ("=", "=="):
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if op == "LIKE":
            return _like(left, right)
        if left is None or right is None:
            return None
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            return left / right
        raise RelationalError(f"unsupported operator {op!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def aggregates(self) -> list["FunctionCall"]:
        return self.left.aggregates() + self.right.aggregates()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """NOT or arithmetic negation."""

    operator: str
    operand: Expression

    def evaluate(self, scope: dict[str, object]) -> object:
        value = self.operand.evaluate(scope)
        if self.operator == "NOT":
            return not bool(value)
        if self.operator == "-":
            return None if value is None else -value
        raise RelationalError(f"unsupported unary operator {self.operator!r}")

    def columns(self) -> set[str]:
        return self.operand.columns()

    def aggregates(self) -> list["FunctionCall"]:
        return self.operand.aggregates()


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, scope: dict[str, object]) -> object:
        is_null = self.operand.evaluate(scope) is None
        return not is_null if self.negated else is_null

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, scope: dict[str, object]) -> object:
        value = self.operand.evaluate(scope)
        members = {v.evaluate(scope) for v in self.values}
        result = value in members
        return not result if self.negated else result

    def columns(self) -> set[str]:
        out = set(self.operand.columns())
        for v in self.values:
            out |= v.columns()
        return out


#: Aggregate function names recognised by the executor.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})
#: Scalar functions evaluable per row.
SCALAR_FUNCTIONS = frozenset({"UPPER", "LOWER", "LENGTH", "ABS", "ROUND", "COALESCE"})


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function call; aggregates are handled by the executor's GROUP BY."""

    name: str
    arguments: tuple[Expression, ...]
    star: bool = False
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS

    def evaluate(self, scope: dict[str, object]) -> object:
        upper = self.name.upper()
        if self.is_aggregate:
            # During the aggregation phase, the executor pre-computes the
            # value and stores it in the scope under the call's key.
            key = self.result_key()
            if key in scope:
                return scope[key]
            raise RelationalError(
                f"aggregate {upper} used outside GROUP BY evaluation"
            )
        arguments = [a.evaluate(scope) for a in self.arguments]
        if upper == "UPPER":
            return None if arguments[0] is None else str(arguments[0]).upper()
        if upper == "LOWER":
            return None if arguments[0] is None else str(arguments[0]).lower()
        if upper == "LENGTH":
            return None if arguments[0] is None else len(str(arguments[0]))
        if upper == "ABS":
            return None if arguments[0] is None else abs(arguments[0])
        if upper == "ROUND":
            digits = int(arguments[1]) if len(arguments) > 1 else 0
            return None if arguments[0] is None else round(arguments[0], digits)
        if upper == "COALESCE":
            for a in arguments:
                if a is not None:
                    return a
            return None
        raise RelationalError(f"unsupported function {self.name!r}")

    def result_key(self) -> str:
        """Scope key under which the executor publishes the aggregate value."""
        return str(self).lower()

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.arguments:
            out |= a.columns()
        return out

    def aggregates(self) -> list["FunctionCall"]:
        if self.is_aggregate:
            return [self]
        out: list[FunctionCall] = []
        for a in self.arguments:
            out.extend(a.aggregates())
        return out

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = "*" if self.star else ", ".join(str(a) for a in self.arguments)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({distinct}{inner})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression plus its output alias."""

    expression: Expression
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return str(self.expression)


@dataclass(frozen=True)
class TableRef:
    """A table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An inner or left join clause."""

    table: TableRef
    condition: Optional[Expression]
    kind: str = "INNER"  # INNER or LEFT


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: list[SelectItem]
    table: TableRef | None
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    def output_columns(self) -> list[str]:
        """Best-effort output column names (stars resolved by the executor)."""
        return [item.output_name() for item in self.items if not item.star]


@dataclass
class CreateTableStatement:
    """A parsed CREATE TABLE statement."""

    name: str
    columns: list[tuple[str, str, bool, bool]]  # (name, type, not_null, primary_key)
    foreign_keys: list[tuple[str, str, str]] = field(default_factory=list)


@dataclass
class InsertStatement:
    """A parsed INSERT statement."""

    table: str
    columns: list[str]
    rows: list[list[object]]


Statement = object  # SelectStatement | CreateTableStatement | InsertStatement


def _like(value: object, pattern: object) -> object:
    """SQL LIKE with ``%`` and ``_`` wildcards, case-insensitive."""
    if value is None or pattern is None:
        return None
    regex = re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, str(value), flags=re.IGNORECASE) is not None
