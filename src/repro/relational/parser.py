"""Lexer and recursive-descent parser for the SQL subset.

Supported statements:

* ``SELECT [DISTINCT] items FROM t [alias] [JOIN u [alias] ON cond]*
  [WHERE cond] [GROUP BY exprs] [HAVING cond] [ORDER BY items] [LIMIT n]``
* ``CREATE TABLE name (col TYPE [PRIMARY KEY] [NOT NULL]
  [REFERENCES other(col)], ...)``
* ``INSERT INTO name [(cols)] VALUES (...), (...)``
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SQLParseError
from repro.relational.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    CreateTableStatement,
    Expression,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    Join,
    LiteralValue,
    OrderItem,
    SCALAR_FUNCTIONS,
    SelectItem,
    SelectStatement,
    TableRef,
    UnaryOp,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "JOIN", "INNER", "LEFT", "OUTER", "ON", "AND", "OR", "NOT",
    "IN", "IS", "NULL", "LIKE", "ASC", "DESC", "CREATE", "TABLE", "PRIMARY",
    "KEY", "REFERENCES", "INSERT", "INTO", "VALUES", "TRUE", "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<string>'(?:[^']|'')*')
    | (?P<number>[+-]?\d+(?:\.\d+)?)
    | (?P<identifier>[A-Za-z_][\w]*)
    | (?P<operator><=|>=|<>|!=|=|<|>|\+|-|\*|/)
    | (?P<punct>[(),.;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> list[Token]:
    """Split a SQL string into tokens, raising on unexpected characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        ch = sql[position]
        if ch.isspace():
            position += 1
            continue
        if sql.startswith("--", position):
            end = sql.find("\n", position)
            position = len(sql) if end == -1 else end
            continue
        match = _TOKEN_RE.match(sql, position)
        if not match:
            raise SQLParseError(f"unexpected character {ch!r}", position=position)
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "identifier" and text.upper() in _KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, position))
        position = match.end()
    return tokens


def parse_sql(sql: str):
    """Parse one SQL statement and return the corresponding AST node."""
    tokens = tokenize(sql)
    parser = _SQLParser(tokens)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


class _SQLParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token | None:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self._index += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Token | None:
        token = self._peek()
        if token and token.kind == "keyword" and token.upper in keywords:
            return self._next()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if token.kind != "keyword" or token.upper != keyword:
            raise SQLParseError(f"expected {keyword}, got {token.text!r}", position=token.position)
        return token

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token and token.kind in ("punct", "operator") and token.text == punct:
            self._next()
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.text != punct:
            raise SQLParseError(f"expected {punct!r}, got {token.text!r}", position=token.position)

    def expect_end(self) -> None:
        """Fail if unconsumed tokens remain (a trailing ``;`` is allowed)."""
        self._accept_punct(";")
        token = self._peek()
        if token is not None:
            raise SQLParseError(f"unexpected trailing token {token.text!r}", position=token.position)

    # -- statements ----------------------------------------------------------
    def parse_statement(self):
        token = self._peek()
        if token is None:
            raise SQLParseError("empty statement")
        if token.upper == "SELECT":
            return self.parse_select()
        if token.upper == "CREATE":
            return self.parse_create_table()
        if token.upper == "INSERT":
            return self.parse_insert()
        raise SQLParseError(f"unsupported statement starting with {token.text!r}",
                            position=token.position)

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = self._parse_select_items()
        table = None
        joins: list[Join] = []
        if self._accept_keyword("FROM"):
            table = self._parse_table_ref()
            joins = self._parse_joins()
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        group_by: list[Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_expression_list()
        having = self._parse_expression() if self._accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_items()
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "number":
                raise SQLParseError("LIMIT requires an integer", position=token.position)
            limit = int(float(token.text))
        return SelectStatement(
            items=items, table=table, joins=joins, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit, distinct=distinct,
        )

    def parse_create_table(self) -> CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._parse_identifier()
        self._expect_punct("(")
        columns: list[tuple[str, str, bool, bool]] = []
        foreign_keys: list[tuple[str, str, str]] = []
        while True:
            column_name = self._parse_identifier()
            type_token = self._next()
            type_name = type_token.text
            if self._accept_punct("("):
                while not self._accept_punct(")"):
                    self._next()
            not_null = False
            primary = False
            while True:
                if self._accept_keyword("PRIMARY"):
                    self._expect_keyword("KEY")
                    primary = True
                elif self._accept_keyword("NOT"):
                    self._expect_keyword("NULL")
                    not_null = True
                elif self._accept_keyword("REFERENCES"):
                    ref_table = self._parse_identifier()
                    self._expect_punct("(")
                    ref_column = self._parse_identifier()
                    self._expect_punct(")")
                    foreign_keys.append((column_name, ref_table, ref_column))
                else:
                    break
            columns.append((column_name, type_name, not_null, primary))
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        return CreateTableStatement(name=name, columns=columns, foreign_keys=foreign_keys)

    def parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_identifier()
        columns: list[str] = []
        if self._accept_punct("("):
            while True:
                columns.append(self._parse_identifier())
                if self._accept_punct(","):
                    continue
                self._expect_punct(")")
                break
        self._expect_keyword("VALUES")
        rows: list[list[object]] = []
        while True:
            self._expect_punct("(")
            row: list[object] = []
            while True:
                row.append(self._parse_literal_value())
                if self._accept_punct(","):
                    continue
                self._expect_punct(")")
                break
            rows.append(row)
            if self._accept_punct(","):
                continue
            break
        return InsertStatement(table=table, columns=columns, rows=rows)

    # -- select helpers ----------------------------------------------------
    def _parse_select_items(self) -> list[SelectItem]:
        items: list[SelectItem] = []
        while True:
            token = self._peek()
            if token and token.text == "*":
                self._next()
                items.append(SelectItem(expression=LiteralValue(None), star=True))
            elif (token and token.kind == "identifier" and self._peek(1) is not None
                  and self._peek(1).text == "." and self._peek(2) is not None
                  and self._peek(2).text == "*"):
                table = self._next().text
                self._next()
                self._next()
                items.append(SelectItem(expression=LiteralValue(None), star=True, star_table=table))
            else:
                expression = self._parse_expression()
                alias = None
                if self._accept_keyword("AS"):
                    alias = self._parse_identifier()
                else:
                    next_token = self._peek()
                    if next_token and next_token.kind == "identifier":
                        alias = self._next().text
                items.append(SelectItem(expression=expression, alias=alias))
            if self._accept_punct(","):
                continue
            return items

    def _parse_table_ref(self) -> TableRef:
        name = self._parse_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier()
        else:
            token = self._peek()
            if token and token.kind == "identifier":
                alias = self._next().text
        return TableRef(name=name, alias=alias)

    def _parse_joins(self) -> list[Join]:
        joins: list[Join] = []
        while True:
            kind = "INNER"
            if self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                pass
            else:
                return joins
            table = self._parse_table_ref()
            condition = None
            if self._accept_keyword("ON"):
                condition = self._parse_expression()
            joins.append(Join(table=table, condition=condition, kind=kind))

    def _parse_order_items(self) -> list[OrderItem]:
        items: list[OrderItem] = []
        while True:
            expression = self._parse_expression()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(OrderItem(expression=expression, descending=descending))
            if self._accept_punct(","):
                continue
            return items

    def _parse_expression_list(self) -> list[Expression]:
        expressions = [self._parse_expression()]
        while self._accept_punct(","):
            expressions.append(self._parse_expression())
        return expressions

    def _parse_identifier(self) -> str:
        token = self._next()
        if token.kind not in ("identifier", "keyword"):
            raise SQLParseError(f"expected identifier, got {token.text!r}", position=token.position)
        return token.text

    def _parse_literal_value(self) -> object:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "keyword" and token.upper == "NULL":
            return None
        if token.kind == "keyword" and token.upper in ("TRUE", "FALSE"):
            return token.upper == "TRUE"
        raise SQLParseError(f"expected literal, got {token.text!r}", position=token.position)

    # -- expressions ----------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token and token.kind == "operator" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            operator = self._next().text
            return BinaryOp(operator, left, self._parse_additive())
        if self._accept_keyword("LIKE"):
            return BinaryOp("LIKE", left, self._parse_additive())
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if token and token.kind == "keyword" and token.upper == "NOT":
            after = self._peek(1)
            if after and after.kind == "keyword" and after.upper == "IN":
                self._next()
                negated = True
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            values: list[Expression] = []
            while True:
                values.append(self._parse_additive())
                if self._accept_punct(","):
                    continue
                self._expect_punct(")")
                break
            return InList(left, tuple(values), negated=negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token and token.kind == "operator" and token.text in ("+", "-"):
                operator = self._next().text
                left = BinaryOp(operator, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token and token.kind == "operator" and token.text in ("*", "/"):
                operator = self._next().text
                left = BinaryOp(operator, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token and token.kind == "operator" and token.text == "-":
            self._next()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind == "string":
            return LiteralValue(token.text[1:-1].replace("''", "'"))
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return LiteralValue(value)
        if token.kind == "keyword" and token.upper == "NULL":
            return LiteralValue(None)
        if token.kind == "keyword" and token.upper in ("TRUE", "FALSE"):
            return LiteralValue(token.upper == "TRUE")
        if token.text == "(":
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "identifier":
            upper = token.text.upper()
            next_token = self._peek()
            if next_token and next_token.text == "(" and (
                upper in AGGREGATE_FUNCTIONS or upper in SCALAR_FUNCTIONS
            ):
                return self._parse_function_call(token.text)
            if next_token and next_token.text == ".":
                self._next()
                column = self._parse_identifier()
                return ColumnRef(name=column, table=token.text)
            return ColumnRef(name=token.text)
        raise SQLParseError(f"unexpected token {token.text!r}", position=token.position)

    def _parse_function_call(self, name: str) -> FunctionCall:
        self._expect_punct("(")
        if self._accept_punct(")"):
            return FunctionCall(name=name, arguments=())
        star = False
        distinct = bool(self._accept_keyword("DISTINCT"))
        arguments: list[Expression] = []
        token = self._peek()
        if token and token.text == "*":
            self._next()
            star = True
        else:
            while True:
                arguments.append(self._parse_expression())
                if self._accept_punct(","):
                    continue
                break
        self._expect_punct(")")
        return FunctionCall(name=name, arguments=tuple(arguments), star=star, distinct=distinct)
