"""CSV import/export for relational sources.

Les Décodeurs scraped elected-representative lists into "a simple tabular
file" (paper §1); this module loads such files into :class:`Database`
tables and writes query results back out.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from repro.errors import RelationalError
from repro.relational.database import Database
from repro.relational.executor import ResultSet
from repro.relational.table import Table


def load_csv(database: Database, name: str, source: str | Path | io.TextIOBase,
             delimiter: str = ",", primary_key: str | None = None) -> Table:
    """Load a CSV file (or file-like object / literal text) into a new table.

    Column types are inferred per column: integer if every non-empty value
    parses as an int, float if every value parses as a number, text
    otherwise.
    """
    rows = _read_rows(source, delimiter)
    if not rows:
        raise RelationalError(f"CSV source for table {name!r} is empty")
    typed = [_coerce_record(record) for record in rows]
    return database.create_table_from_rows(name, typed, primary_key=primary_key)


def dump_csv(result: ResultSet, destination: str | Path | io.TextIOBase | None = None,
             delimiter: str = ",") -> str:
    """Serialise a result set as CSV text, optionally writing it to a file."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow(["" if v is None else v for v in row])
    text = buffer.getvalue()
    if destination is None:
        return text
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text, encoding="utf-8")
    else:
        destination.write(text)
    return text


def _read_rows(source: str | Path | io.TextIOBase, delimiter: str) -> list[dict[str, str]]:
    if isinstance(source, io.TextIOBase):
        reader = csv.DictReader(source, delimiter=delimiter)
        return [dict(r) for r in reader]
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and Path(source).exists()):
        with open(source, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            return [dict(r) for r in reader]
    reader = csv.DictReader(io.StringIO(str(source)), delimiter=delimiter)
    return [dict(r) for r in reader]


def _coerce_record(record: dict[str, str]) -> dict[str, object]:
    return {key: _coerce_value(value) for key, value in record.items()}


def _coerce_value(value: str | None) -> object:
    if value is None or value == "":
        return None
    text = value.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
