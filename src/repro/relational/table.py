"""Row storage and secondary indexes for the relational substrate."""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.core.deltas import DeltaJournal, INSERT
from repro.errors import SchemaError
from repro.locks import RWLock
from repro.relational.schema import TableSchema


class Index:
    """A hash index from one column's values to row positions."""

    def __init__(self, column: str):
        self.column = column
        self._entries: dict[object, list[int]] = defaultdict(list)

    def _copy(self) -> "Index":
        """Structural copy (snapshot support)."""
        twin = Index(self.column)
        for value, row_ids in self._entries.items():
            twin._entries[value] = list(row_ids)
        return twin

    def add(self, value: object, row_id: int) -> None:
        """Record that ``value`` appears at ``row_id``."""
        self._entries[value].append(row_id)

    def lookup(self, value: object) -> list[int]:
        """Return the row positions holding ``value``."""
        return list(self._entries.get(value, ()))

    def distinct_count(self) -> int:
        """Number of distinct indexed values (used by selectivity estimates)."""
        return len(self._entries)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._entries.values())


class Table:
    """An in-memory table: a schema plus a list of tuples.

    Rows are stored as tuples in insertion order; hash indexes can be added
    on any column (the primary key is indexed automatically).
    """

    def __init__(self, schema: TableSchema, lock: RWLock | None = None,
                 journal: DeltaJournal | None = None,
                 version_of: Callable[[], int] | None = None):
        self.schema = schema
        self.rows: list[tuple] = []
        self._indexes: dict[str, Index] = {}
        self._version = 0
        # A table created inside a Database records into the database's
        # journal under the *database* version scale (its version is the
        # catalog version plus every table's counter), scoped by table
        # name; a standalone table journals under its own counter.
        self._journal = journal if journal is not None else DeltaJournal()
        self._version_of = version_of if version_of is not None \
            else (lambda: self._version)
        # A table created inside a Database shares the database's lock,
        # so a database snapshot is one consistent cut across its tables.
        self._rwlock = lock or RWLock()
        self._snapshot_state: tuple[int, "Table"] | None = None
        self._snapshot_lock = threading.Lock()
        if schema.primary_key:
            self.create_index(schema.primary_key)

    @property
    def version(self) -> int:
        """Monotonic mutation counter (used for cache invalidation)."""
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: dict[str, object] | list[object] | tuple) -> tuple:
        """Insert a row (dict or positional) and return the stored tuple."""
        row = self.schema.coerce_row(values)
        with self._rwlock.write_locked():
            pre = self._version_of()
            stored = self._insert_unlocked(row, bump=False)
            self._version += 1
            entry = self._journal.record(
                pre, pre + 1, INSERT,
                (dict(zip(self.schema.column_names(), stored)),),
                scope=self.name.lower())
        self._journal.notify(entry)
        return stored

    def _insert_unlocked(self, row: tuple, bump: bool = True) -> tuple:
        if self.schema.primary_key:
            pk_index = self.schema.column_index(self.schema.primary_key)
            pk_value = row[pk_index]
            if pk_value is None:
                raise SchemaError(
                    f"primary key {self.schema.primary_key!r} of {self.name!r} cannot be NULL"
                )
            if self._indexes[self.schema.primary_key.lower()].lookup(pk_value):
                raise SchemaError(
                    f"duplicate primary key {pk_value!r} in table {self.name!r}"
                )
        row_id = len(self.rows)
        self.rows.append(row)
        for column, index in self._indexes.items():
            index.add(row[self.schema.column_index(column)], row_id)
        if bump:
            self._version += 1
        return row

    def insert_many(self, rows: Iterable[dict[str, object] | list[object] | tuple]) -> int:
        """Insert every row of ``rows``; return how many were inserted.

        The write lock is held across the whole batch, so a concurrent
        snapshot sees all of it or none of it — and the whole batch is
        ONE version bump, so one ingest invalidates derived state once,
        not once per row.
        """
        names = self.schema.column_names()
        entry = None
        with self._rwlock.write_locked():
            pre = self._version_of()
            inserted: list[dict[str, object]] = []
            try:
                for values in rows:
                    row = self.schema.coerce_row(values)
                    stored = self._insert_unlocked(row, bump=False)
                    inserted.append(dict(zip(names, stored)))
            finally:
                # Even a partially applied batch (a constraint error
                # mid-way) must advance the version: rows landed, so
                # version equality has to keep meaning "unchanged".
                if inserted:
                    self._version += 1
                    entry = self._journal.record(pre, pre + 1, INSERT,
                                                 inserted,
                                                 scope=self.name.lower())
        if entry is not None:
            self._journal.notify(entry)
        return len(inserted)

    def create_index(self, column: str) -> Index:
        """Create (or return the existing) hash index on ``column``."""
        key = column.lower()
        with self._rwlock.write_locked():
            if key in self._indexes:
                return self._indexes[key]
            if not self.schema.has_column(column):
                raise SchemaError(f"cannot index unknown column {column!r} of {self.name!r}")
            index = Index(column)
            position = self.schema.column_index(column)
            for row_id, row in enumerate(self.rows):
                index.add(row[position], row_id)
            self._indexes[key] = index
            return index

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    def snapshot(self) -> "Table":
        """A frozen copy of the table at its current version (memoised)."""
        with self._rwlock.read_locked():
            state = self._snapshot_state
            if state is not None and state[0] == self._version:
                return state[1]
            with self._snapshot_lock:
                state = self._snapshot_state
                if state is not None and state[0] == self._version:
                    return state[1]
                frozen = self._copy_unlocked()
                self._snapshot_state = (self._version, frozen)
                return frozen

    def _copy_unlocked(self, lock: RWLock | None = None) -> "Table":
        """Structural copy sharing the (immutable) schema; counters kept."""
        frozen = Table.__new__(Table)
        frozen.schema = self.schema
        frozen.rows = list(self.rows)
        frozen._indexes = {key: index._copy() for key, index in self._indexes.items()}
        frozen._version = self._version
        # Shared journal: a frozen copy never writes, it only replays
        # history up to its own (frozen) version.
        frozen._journal = self._journal
        frozen._version_of = lambda: frozen._version
        frozen._rwlock = lock or RWLock()
        frozen._snapshot_state = (frozen._version, frozen)
        frozen._snapshot_lock = threading.Lock()
        return frozen

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def scan(self, predicate: Callable[[dict[str, object]], bool] | None = None) -> Iterator[dict[str, object]]:
        """Yield rows as dictionaries, optionally filtered by ``predicate``."""
        names = self.schema.column_names()
        for row in self.rows:
            record = dict(zip(names, row))
            if predicate is None or predicate(record):
                yield record

    def lookup(self, column: str, value: object) -> list[dict[str, object]]:
        """Return the rows where ``column == value``, via index when available."""
        names = self.schema.column_names()
        key = column.lower()
        if key in self._indexes:
            return [dict(zip(names, self.rows[row_id]))
                    for row_id in self._indexes[key].lookup(value)]
        position = self.schema.column_index(column)
        return [dict(zip(names, row)) for row in self.rows if row[position] == value]

    def has_index(self, column: str) -> bool:
        """True when a hash index exists on ``column``."""
        return column.lower() in self._indexes

    def distinct_values(self, column: str) -> set[object]:
        """Return the distinct non-NULL values of ``column``."""
        position = self.schema.column_index(column)
        return {row[position] for row in self.rows if row[position] is not None}

    def column_values(self, column: str) -> list[object]:
        """Return every value (including duplicates) of ``column``."""
        position = self.schema.column_index(column)
        return [row[position] for row in self.rows]

    def statistics(self) -> dict[str, object]:
        """Basic per-table statistics used by the mediator's planner."""
        return {
            "rows": len(self.rows),
            "columns": len(self.schema.columns),
            "distinct": {
                c.name: len(self.distinct_values(c.name)) for c in self.schema.columns
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, rows={len(self.rows)})"
