"""Per-path inverted indexes over a JSON document collection.

A :class:`PathIndex` maps every *normalised* leaf value observed at one
dotted path to the set of documents carrying it.  Array elements are
indexed individually, matching the existential tree-pattern semantics.
The indexes serve two purposes: candidate pruning before the matcher
verifies documents (predicate pushdown), and cardinality statistics for
the planner's selectivity ordering.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def normalize(value: object) -> object:
    """Normalise a leaf value for index keys (keyword-style strings)."""
    if isinstance(value, str):
        return value.lower()
    if isinstance(value, (dict, list, set)):
        return str(value)
    return value


class PathIndex:
    """Inverted index of one dotted path: normalised value -> doc ids."""

    def __init__(self, path: str):
        self.path = path
        self.postings: dict[object, set[str]] = {}
        self.presence: set[str] = set()
        self.occurrences = 0
        #: Monotonic mutation stamp; unchanged while the index is shared.
        self.version = 0
        #: True while postings/presence are shared with a snapshot twin.
        self._shared = False

    # -- maintenance ---------------------------------------------------------
    def add(self, doc_id: str, value: object) -> None:
        """Index one leaf value of one document."""
        self._unshare()
        key = normalize(value)
        self.postings.setdefault(key, set()).add(doc_id)
        self.presence.add(doc_id)
        self.occurrences += 1
        self.version += 1

    def remove(self, doc_id: str, value: object) -> None:
        """Drop one previously indexed value of ``doc_id``."""
        self._unshare()
        key = normalize(value)
        bucket = self.postings.get(key)
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del self.postings[key]
        self.occurrences = max(0, self.occurrences - 1)
        if not any(doc_id in ids for ids in self.postings.values()):
            self.presence.discard(doc_id)
        self.version += 1

    def _copy(self) -> "PathIndex":
        """Copy-on-write twin (snapshot support).

        Postings and presence are *shared* until either twin mutates —
        snapshotting a large store no longer rebuilds every per-path
        posting eagerly.  The first ``add``/``remove`` on either side
        privatises that side's containers (:meth:`_unshare`).
        """
        twin = PathIndex(self.path)
        twin.postings = self.postings
        twin.presence = self.presence
        twin.occurrences = self.occurrences
        twin.version = self.version
        twin._shared = True
        self._shared = True
        return twin

    def _unshare(self) -> None:
        """Privatise shared containers before the first mutation."""
        if self._shared:
            self.postings = {key: set(ids) for key, ids in self.postings.items()}
            self.presence = set(self.presence)
            self._shared = False

    # -- lookups -------------------------------------------------------------
    def lookup_eq(self, value: object) -> set[str]:
        """Documents carrying ``value`` (keyword-style equality) at the path."""
        return set(self.postings.get(normalize(value), ()))

    def lookup_cmp(self, op: str, value: object) -> set[str]:
        """Documents with *some* element at the path satisfying ``op value``."""
        if op == "=":
            return self.lookup_eq(value)
        out: set[str] = set()
        reference = normalize(value)
        for key, doc_ids in self.postings.items():
            if compare(op, key, reference):
                out |= doc_ids
        return out

    # -- statistics ----------------------------------------------------------
    @property
    def document_count(self) -> int:
        """Number of documents in which the path occurs."""
        return len(self.presence)

    @property
    def distinct_count(self) -> int:
        """Number of distinct (normalised) values at the path."""
        return len(self.postings)

    def average_postings(self) -> float:
        """Expected matches of an equality with an unknown (bound) value."""
        if not self.postings:
            return 0.0
        return self.document_count / len(self.postings)

    def values(self) -> Iterator[object]:
        """Every distinct normalised value (used by digest construction)."""
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self.postings)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"PathIndex(path={self.path!r}, distinct={self.distinct_count}, "
                f"documents={self.document_count})")


def compare(op: str, left: object, right: object) -> bool:
    """Apply a comparison, returning False on incomparable types."""
    if op == "=":
        return normalize(left) == normalize(right)
    if op == "!=":
        return normalize(left) != normalize(right)
    if isinstance(left, bool) or isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        left, right = left.lower(), right.lower()
    else:
        return False
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    return False
