"""Tree-pattern AST of the JSON document model.

The paper's running example (Figure 2) queries tweets as JSON documents;
a *tree pattern* is the natural query shape for them: a set of dotted
paths into the document tree, each leaf either binding a mediator
variable, comparing the values found at the path against a constant (or a
run-time ``{parameter}``), or merely requiring the path to exist.

Array values are handled existentially, as in XML/JSON tree-pattern
semantics: a predicate holds for a document when *some* element at the
path satisfies it, and a variable leaf produces one binding per matching
element (so ``entities.hashtags: ?tag`` fans out over the hashtag list).
String equality is keyword-style (case-insensitive), mirroring the
full-text store's keyword fields, so ``"SIA2016"`` and ``"sia2016"``
denote the same tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import JSONError

#: Comparison operators a leaf predicate may use.
COMPARISONS = ("=", "!=", ">", ">=", "<", "<=")

#: Path segments with structural (axis) meaning: ``*`` matches exactly one
#: step with any key (the child axis, label-free), ``**`` matches any chain
#: of zero or more steps (the descendant-or-self axis between its
#: neighbouring segments).
WILDCARD_SEGMENTS = ("*", "**")


def path_segments(path: str) -> list[str]:
    """The dotted path split into its step segments."""
    return path.split(".")


def is_wildcard_path(path: str) -> bool:
    """True when the path uses ``*``/``**`` axis segments."""
    if "*" not in path:
        return False
    return any(segment in WILDCARD_SEGMENTS for segment in path.split("."))


def _nfa_closure(segments: list[str], positions: set[int]) -> set[int]:
    """ε-closure of NFA positions: ``**`` may consume zero steps."""
    out = set(positions)
    frontier = list(positions)
    while frontier:
        index = frontier.pop()
        if index < len(segments) and segments[index] == "**" and index + 1 not in out:
            out.add(index + 1)
            frontier.append(index + 1)
    return out


def _nfa_advance(segments: list[str], positions: set[int], key: str) -> set[int]:
    """Positions reachable after consuming one concrete step ``key``."""
    out: set[int] = set()
    for index in positions:
        if index >= len(segments):
            continue
        segment = segments[index]
        if segment == "**":
            out.add(index)  # the descendant chain absorbs the step
        elif segment == "*" or segment == key:
            out.add(index + 1)
    return _nfa_closure(segments, out)


def path_matches(pattern_path: str, concrete_path: str,
                 prefix: bool = False) -> bool:
    """Does a (possibly wildcard) pattern path match a concrete path?

    With ``prefix=True`` the pattern may also match any non-empty prefix
    of ``concrete_path`` — the question ``doc_ids_with_path`` asks, since
    every interior node's path is a prefix of some indexed leaf path.
    """
    segments = pattern_path.split(".")
    length = len(segments)
    positions = _nfa_closure(segments, {0})
    for step in concrete_path.split("."):
        positions = _nfa_advance(segments, positions, step)
        if not positions:
            return False
        if prefix and length in positions:
            return True
    return length in positions


@dataclass(frozen=True)
class Parameter:
    """A run-time parameter (``{name}``) filled from the current bindings."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "{" + self.name + "}"


@dataclass(frozen=True)
class Predicate:
    """One comparison applied to the values found at a leaf's path."""

    op: str
    value: object  # a constant, or a Parameter resolved at run time

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise JSONError(f"unsupported tree-pattern comparison {self.op!r}")

    def resolve(self, parameters: dict[str, object] | None) -> "Predicate":
        """Return a copy with :class:`Parameter` values filled in."""
        if not isinstance(self.value, Parameter):
            return self
        parameters = parameters or {}
        if self.value.name not in parameters:
            raise JSONError(
                f"tree-pattern parameter {{{self.value.name}}} is not bound"
            )
        return Predicate(op=self.op, value=parameters[self.value.name])

    def render(self) -> str:
        """Textual form (``>= 100``, ``= "sia2016"``)."""
        return f"{self.op} {render_value(self.value)}"


@dataclass(frozen=True)
class PatternLeaf:
    """One constrained path of a tree pattern."""

    path: str
    variable: Optional[str] = None
    predicates: tuple[Predicate, ...] = ()

    def is_existence(self) -> bool:
        """True when the leaf only requires the path to exist."""
        return self.variable is None and not self.predicates

    def parameters(self) -> set[str]:
        """Names of the run-time parameters used by this leaf."""
        return {p.value.name for p in self.predicates if isinstance(p.value, Parameter)}

    def constant_equality(self) -> object | None:
        """The constant of an equality predicate, if the leaf carries one."""
        for predicate in self.predicates:
            if predicate.op == "=" and not isinstance(predicate.value, Parameter):
                return predicate.value
        return None

    def members(self) -> list[str]:
        """Textual members (one per predicate) used by :meth:`TreePattern.to_text`."""
        if not self.predicates:
            spec = f"?{self.variable}" if self.variable else "*"
            return [f"{self.path}: {spec}"]
        rendered = []
        first, *rest = self.predicates
        if self.variable:
            rendered.append(f"{self.path}: ?{self.variable} {first.render()}")
        elif first.op == "=":
            rendered.append(f"{self.path}: {render_value(first.value)}")
        else:
            rendered.append(f"{self.path}: {first.render()}")
        rendered.extend(f"{self.path}: {p.render()}" for p in rest)
        return rendered


@dataclass(frozen=True)
class TreePattern:
    """A full tree pattern: the conjunction of its leaves."""

    leaves: tuple[PatternLeaf, ...]

    def __post_init__(self) -> None:
        if not self.leaves:
            raise JSONError("a tree pattern needs at least one leaf")
        seen: set[str] = set()
        for leaf in self.leaves:
            if leaf.path in seen:
                raise JSONError(
                    f"tree pattern constrains path {leaf.path!r} twice; merge the "
                    "predicates into one leaf"
                )
            seen.add(leaf.path)

    # -- bookkeeping ---------------------------------------------------------
    def paths(self) -> tuple[str, ...]:
        """Every constrained dotted path, in pattern order."""
        return tuple(leaf.path for leaf in self.leaves)

    def leaf(self, path: str) -> PatternLeaf | None:
        """The leaf constraining ``path`` (if any)."""
        for leaf in self.leaves:
            if leaf.path == path:
                return leaf
        return None

    def variables(self) -> set[str]:
        """Mediator variables the pattern binds."""
        return {leaf.variable for leaf in self.leaves if leaf.variable}

    def parameters(self) -> set[str]:
        """Run-time parameters the pattern needs before evaluation."""
        out: set[str] = set()
        for leaf in self.leaves:
            out |= leaf.parameters()
        return out

    def variable_paths(self) -> dict[str, list[str]]:
        """Variable name -> the paths it is bound at (usually one)."""
        out: dict[str, list[str]] = {}
        for leaf in self.leaves:
            if leaf.variable:
                out.setdefault(leaf.variable, []).append(leaf.path)
        return out

    def to_text(self) -> str:
        """Canonical textual form, re-parseable by :func:`parse_pattern`."""
        members: list[str] = []
        for leaf in self.leaves:
            members.extend(leaf.members())
        return "{ " + ", ".join(members) + " }"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.to_text()


def make_pattern(leaves: Iterable[PatternLeaf]) -> TreePattern:
    """Build a pattern, merging leaves that constrain the same path."""
    merged: dict[str, PatternLeaf] = {}
    for leaf in leaves:
        existing = merged.get(leaf.path)
        if existing is None:
            merged[leaf.path] = leaf
            continue
        if existing.variable and leaf.variable and existing.variable != leaf.variable:
            raise JSONError(
                f"path {leaf.path!r} bound to both ?{existing.variable} and "
                f"?{leaf.variable}"
            )
        merged[leaf.path] = PatternLeaf(
            path=leaf.path,
            variable=existing.variable or leaf.variable,
            predicates=existing.predicates + leaf.predicates,
        )
    return TreePattern(leaves=tuple(merged.values()))


def render_value(value: object) -> str:
    """Render a constant (or parameter) in the textual pattern syntax."""
    if isinstance(value, Parameter):
        return str(value)
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'
