"""Tree-pattern evaluation: accelerated matching with a naive core.

:func:`match_document` is the reference (naive) semantics: evaluate a
pattern against one document and produce its binding rows.
:class:`TreePatternMatcher` wraps it with index-based candidate pruning —
equality and comparison predicates (including pushed-down bindings from a
bind join) are first answered from the store's per-path indexes — and,
by default (``accel=True``), verifies the surviving candidates against
the store's XPath-accelerator encoding (:mod:`repro.json.accel`): each
pattern leaf compiles to structural range probes over the columnar
``(pre, post, level, path-id, value-id)`` arrays, so the per-document
hot path is a handful of :mod:`bisect` calls instead of a tree walk.
With ``accel=False`` candidates are verified by walking the document
tree (:func:`match_document`).  The two paths must agree; the test
suite checks them against each other.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.engine.batch import BindingBatch
from repro.errors import JSONError
from repro.json.accel import CompiledPattern, iter_child_items
from repro.json.index import compare, normalize
from repro.json.pattern import (
    Parameter,
    Predicate,
    TreePattern,
    _nfa_advance,
    _nfa_closure,
    is_wildcard_path,
)
from repro.obs.metrics import get_registry
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.json.store import JSONDocumentStore

#: A binding row: variable name -> value.
Row = dict[str, object]

_MISSING = object()


def leaf_values(document: dict, path: str) -> list[object]:
    """Every value reachable at ``path``, fanning out over arrays.

    Wildcard segments (``*``/``**``) walk the node model with an NFA
    over the path's segments; concrete paths keep the historical
    level-by-level walk (both emit values in document pre-order).
    """
    if is_wildcard_path(path):
        return _wildcard_leaf_values(document, path.split("."))
    current: list[object] = [document]
    for part in path.split("."):
        next_level: list[object] = []
        for value in current:
            if isinstance(value, list):
                value_items = value
            else:
                value_items = [value]
            for item in value_items:
                if isinstance(item, dict) and part in item:
                    next_level.append(item[part])
        current = next_level
        if not current:
            return []
    # Fan out over a trailing array value (e.g. entities.hashtags).
    flattened: list[object] = []
    for value in current:
        if isinstance(value, list):
            flattened.extend(value)
        else:
            flattened.append(value)
    return flattened


def _wildcard_leaf_values(document: dict, segments: list[str]) -> list[object]:
    """Values of the nodes a wildcard path matches, in pre-order.

    An explicit stack carries ``(raw, NFA positions, emit)``: children
    are pushed reversed so nodes pop in document order, each emitted
    before its subtree — genuine pre-order without recursion.
    """
    length = len(segments)
    out: list[object] = []
    stack: list[tuple[object, set[int], bool]] = [
        (document, _nfa_closure(segments, {0}), False)]
    while stack:
        raw, positions, emit = stack.pop()
        if emit:
            out.append(raw)
        children = list(iter_child_items(raw))
        for key, child in reversed(children):
            advanced = _nfa_advance(segments, positions, key)
            if advanced:
                stack.append((child, advanced, length in advanced))
    return out


def match_document(pattern: TreePattern, document: dict,
                   parameters: dict[str, object] | None = None,
                   pushdown: Row | None = None) -> list[Row]:
    """Naive tree-pattern semantics: the binding rows of one document.

    ``parameters`` fills ``{param}`` predicate values; ``pushdown`` maps
    output variables to values already bound by the mediator (a bind
    join) — matching rows are aligned to the pushed value so the
    mediator's exact-equality joins accept them.
    """
    keeps: list[list[object]] = []
    for leaf in pattern.leaves:
        values = leaf_values(document, leaf.path)
        if not values:
            return []
        predicates = [p.resolve(parameters) for p in leaf.predicates]
        keep = [v for v in values
                if all(compare(p.op, v, p.value) for p in predicates)]
        if not keep:
            return []
        keeps.append(keep)
    return _rows_from_keeps(pattern, keeps, pushdown or {})


def _rows_from_keeps(pattern: TreePattern, keeps: list[list[object]],
                     pushdown: Row) -> list[Row]:
    """Binding rows from per-leaf kept values (shared by both matchers)."""
    rows: list[Row] = [{}]
    for leaf, keep in zip(pattern.leaves, keeps):
        if leaf.variable is None:
            continue
        bound = pushdown.get(leaf.variable, _MISSING)
        if bound is not _MISSING:
            if not any(compare("=", v, bound) for v in keep):
                return []
            keep = [bound]
        rows = _extend(rows, leaf.variable, _dedupe(keep))
        if not rows:
            return []
    return rows


def _extend(rows: list[Row], variable: str, values: list[object]) -> list[Row]:
    out: list[Row] = []
    for row in rows:
        if variable in row:
            # The same variable constrained at a second path must agree.
            if any(normalize(row[variable]) == normalize(v) for v in values):
                out.append(row)
            continue
        for value in values:
            out.append({**row, variable: value})
    return out


def _dedupe(values: Iterable[object]) -> list[object]:
    seen: set[object] = set()
    out: list[object] = []
    for value in values:
        key = normalize(value)
        try:
            new = key not in seen
        except TypeError:
            new = True
        else:
            seen.add(key)
        if new:
            out.append(value)
    return out


class TreePatternMatcher:
    """Evaluates tree patterns over a :class:`JSONDocumentStore`."""

    def __init__(self, store: "JSONDocumentStore", accel: bool = True):
        self.store = store
        #: Verify candidates against the columnar encoding (False = walk
        #: the document trees; kept as the reference semantics).
        self.accel = accel

    # ------------------------------------------------------------------
    def match(self, pattern: TreePattern,
              parameters: dict[str, object] | None = None,
              pushdown: Row | None = None,
              limit: int | None = None) -> list[Row]:
        """Binding rows of every matching document (index-pruned)."""
        pushdown = pushdown or {}
        candidate_ids = self.candidates(pattern, parameters=parameters,
                                        pushdown=pushdown)
        return self._verify(pattern, candidate_ids, parameters, pushdown, limit)

    def match_columns(self, pattern: TreePattern,
                      parameters: dict[str, object] | None = None,
                      pushdown: Row | None = None,
                      limit: int | None = None) -> BindingBatch:
        """Like :meth:`match`, emitted as one :class:`BindingBatch`.

        The columns are the pattern's variables in leaf order; JSON
        atoms flow into the engine's columnar path without a per-row
        dict boundary.
        """
        rows = self.match(pattern, parameters=parameters, pushdown=pushdown,
                          limit=limit)
        columns = _pattern_columns(pattern)
        return BindingBatch(columns,
                            [tuple(row[c] for c in columns) for row in rows])

    # ------------------------------------------------------------------
    def match_batch(self, pattern: TreePattern,
                    calls: list[tuple[dict[str, object], Row]],
                    limit: int | None = None) -> list[list[Row]]:
        """Answer many ``(parameters, pushdown)`` calls in one pass.

        The candidate set of the pattern's *constant* predicates is
        computed once; each call then only adds its own index lookups
        (resolved parameters and pushed-down bindings) before the
        surviving candidates are verified.  The result list is aligned
        with ``calls`` and each entry equals what :meth:`match` would
        have returned for that call.
        """
        if len(calls) <= 1:
            return [self.match(pattern, parameters=parameters, pushdown=pushdown,
                               limit=limit)
                    for parameters, pushdown in calls]
        base = set(self.candidates(pattern))
        results: list[list[Row]] = []
        for parameters, pushdown in calls:
            pushdown = pushdown or {}
            restriction = base
            for leaf in pattern.leaves:
                index = self.store.index_for(leaf.path)
                if index is None:
                    continue
                for predicate in leaf.predicates:
                    if not isinstance(predicate.value, Parameter):
                        continue  # constants already pruned in the base set
                    resolved = _resolve_quietly(predicate, parameters)
                    if resolved is None or resolved.op == "!=":
                        continue
                    restriction = restriction & index.lookup_cmp(resolved.op,
                                                                 resolved.value)
                if leaf.variable is not None and leaf.variable in pushdown:
                    restriction = restriction & index.lookup_eq(pushdown[leaf.variable])
            ordered = sorted(restriction, key=self.store.insertion_rank)
            results.append(self._verify(pattern, ordered, parameters,
                                        pushdown, limit))
        return results

    # ------------------------------------------------------------------
    def _verify(self, pattern: TreePattern, doc_ids: list[str],
                parameters: dict[str, object] | None,
                pushdown: Row, limit: int | None) -> list[Row]:
        """Verify candidate documents, accelerated when possible."""
        if not doc_ids:
            return []
        compiled = self._compile(pattern, parameters)
        if compiled is None:
            rows: list[Row] = []
            for doc_id in doc_ids:
                document = self.store.get(doc_id)
                if document is None:  # pragma: no cover - defensive
                    continue
                rows.extend(match_document(pattern, document,
                                           parameters=parameters,
                                           pushdown=pushdown))
                if limit is not None and len(rows) >= limit:
                    return rows[:limit]
            return rows
        return self._verify_accel(compiled, pattern, doc_ids, parameters,
                                  pushdown, limit)

    def _verify_accel(self, compiled: CompiledPattern, pattern: TreePattern,
                      doc_ids: list[str], parameters, pushdown: Row,
                      limit: int | None) -> list[Row]:
        view = compiled.view
        rows: list[Row] = []
        with span("json.accel.probe", leaves=len(pattern.leaves),
                  candidates=len(doc_ids)) as sp:
            matched = [0] * len(pattern.leaves) if sp is not None else None
            for doc_id in doc_ids:
                document = self.store.get(doc_id)
                ordinal = view.ordinal(doc_id, document)
                if ordinal is None:
                    # Outside the pinned view (or an upsert repointed the
                    # shared ordinal past our watermark): walk the tree.
                    if document is None:  # pragma: no cover - defensive
                        continue
                    doc_rows = match_document(pattern, document,
                                              parameters=parameters,
                                              pushdown=pushdown)
                else:
                    keeps = compiled.leaf_keeps(ordinal)
                    if matched is not None and keeps is not None:
                        for index in range(len(keeps)):
                            matched[index] += 1
                    if keeps is None:
                        continue
                    doc_rows = _rows_from_keeps(pattern, keeps, pushdown)
                rows.extend(doc_rows)
                if limit is not None and len(rows) >= limit:
                    rows = rows[:limit]
                    break
            if sp is not None:
                stats = view.encoding.axis_stats(pattern, view.node_limit)
                axes = []
                for index, leaf in enumerate(pattern.leaves):
                    estimated = (stats["leaves"][index]["documents"]
                                 if stats is not None else None)
                    axes.append({"path": leaf.path, "estimated": estimated,
                                 "actual": matched[index]})
                sp.set(axes=axes, rows=len(rows))
        get_registry().counter("json.accel.probe_rows").inc(len(rows))
        return rows

    def _compile(self, pattern: TreePattern,
                 parameters: dict[str, object] | None) -> Optional[CompiledPattern]:
        """Compile against the store's encoding (None = reference path)."""
        if not self.accel:
            return None
        getter = getattr(self.store, "encoding_view", None)
        if getter is None:
            return None
        view = getter()
        resolved = [[p.resolve(parameters) for p in leaf.predicates]
                    for leaf in pattern.leaves]
        return view.compile(pattern, resolved)

    # ------------------------------------------------------------------
    def candidates(self, pattern: TreePattern,
                   parameters: dict[str, object] | None = None,
                   pushdown: Row | None = None) -> list[str]:
        """Candidate document ids after index-based predicate pushdown.

        The result is a superset of the matching documents (``!=``
        predicates are not pruned; everything is re-verified),
        in insertion order so results stay deterministic.
        """
        pushdown = pushdown or {}
        restrictions: list[set[str]] = []
        for leaf in pattern.leaves:
            index = self.store.index_for(leaf.path)
            if index is None:
                # Interior (non-leaf) or wildcard path: no value index, but
                # presence can still prune through the indexes of the leaf
                # paths it matches (or prefixes).
                restriction = self.store.doc_ids_with_path(leaf.path)
                if not restriction:
                    # The path was never observed: nothing can match.
                    return []
                restrictions.append(restriction)
                continue
            # index.presence is shared state: intersect without mutating it
            # (set & set walks the smaller side, so a selective predicate
            # keeps the whole chain cheap even on a large store).
            restriction = index.presence
            for predicate in leaf.predicates:
                resolved = _resolve_quietly(predicate, parameters)
                if resolved is None or resolved.op == "!=":
                    continue
                restriction = restriction & index.lookup_cmp(resolved.op, resolved.value)
            if leaf.variable is not None and leaf.variable in pushdown:
                restriction = restriction & index.lookup_eq(pushdown[leaf.variable])
            restrictions.append(restriction)
        if not restrictions:
            return []
        restrictions.sort(key=len)
        candidates = restrictions[0]
        for restriction in restrictions[1:]:
            candidates = candidates & restriction
            if not candidates:
                return []
        return sorted(candidates, key=self.store.insertion_rank)

    def selectivity(self, pattern: TreePattern) -> float:
        """Fraction of the store the index pruning retains (1.0 = no pruning)."""
        if len(self.store) == 0:
            return 1.0
        return len(self.candidates(pattern)) / len(self.store)


def _pattern_columns(pattern: TreePattern) -> tuple[str, ...]:
    """The pattern's variables in first-occurrence leaf order."""
    columns: list[str] = []
    for leaf in pattern.leaves:
        if leaf.variable is not None and leaf.variable not in columns:
            columns.append(leaf.variable)
    return tuple(columns)


def _resolve_quietly(predicate: Predicate,
                     parameters: dict[str, object] | None) -> Predicate | None:
    """Resolve a predicate's parameter, or None when it is unbound."""
    if not isinstance(predicate.value, Parameter):
        return predicate
    try:
        return predicate.resolve(parameters)
    except JSONError:
        return None
