"""Tree-pattern evaluation: index-assisted matching with a naive core.

:func:`match_document` is the reference (naive) semantics: evaluate a
pattern against one document and produce its binding rows.
:class:`TreePatternMatcher` wraps it with index-based candidate pruning —
equality and comparison predicates (including pushed-down bindings from a
bind join) are first answered from the store's per-path indexes, and only
the surviving candidate documents are verified naively.  The two paths
must agree; the test suite checks them against each other.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.errors import JSONError
from repro.json.index import compare, normalize
from repro.json.pattern import Parameter, Predicate, TreePattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.json.store import JSONDocumentStore

#: A binding row: variable name -> value.
Row = dict[str, object]

_MISSING = object()


def leaf_values(document: dict, path: str) -> list[object]:
    """Every value reachable at ``path``, fanning out over arrays."""
    current: list[object] = [document]
    for part in path.split("."):
        next_level: list[object] = []
        for value in current:
            if isinstance(value, list):
                value_items = value
            else:
                value_items = [value]
            for item in value_items:
                if isinstance(item, dict) and part in item:
                    next_level.append(item[part])
        current = next_level
        if not current:
            return []
    # Fan out over a trailing array value (e.g. entities.hashtags).
    flattened: list[object] = []
    for value in current:
        if isinstance(value, list):
            flattened.extend(value)
        else:
            flattened.append(value)
    return flattened


def match_document(pattern: TreePattern, document: dict,
                   parameters: dict[str, object] | None = None,
                   pushdown: Row | None = None) -> list[Row]:
    """Naive tree-pattern semantics: the binding rows of one document.

    ``parameters`` fills ``{param}`` predicate values; ``pushdown`` maps
    output variables to values already bound by the mediator (a bind
    join) — matching rows are aligned to the pushed value so the
    mediator's exact-equality joins accept them.
    """
    pushdown = pushdown or {}
    rows: list[Row] = [{}]
    for leaf in pattern.leaves:
        values = leaf_values(document, leaf.path)
        if not values:
            return []
        predicates = [p.resolve(parameters) for p in leaf.predicates]
        keep = [v for v in values
                if all(compare(p.op, v, p.value) for p in predicates)]
        if not keep:
            return []
        if leaf.variable is None:
            continue
        bound = pushdown.get(leaf.variable, _MISSING)
        if bound is not _MISSING:
            if not any(compare("=", v, bound) for v in keep):
                return []
            keep = [bound]
        rows = _extend(rows, leaf.variable, _dedupe(keep))
        if not rows:
            return []
    return rows


def _extend(rows: list[Row], variable: str, values: list[object]) -> list[Row]:
    out: list[Row] = []
    for row in rows:
        if variable in row:
            # The same variable constrained at a second path must agree.
            if any(normalize(row[variable]) == normalize(v) for v in values):
                out.append(row)
            continue
        for value in values:
            out.append({**row, variable: value})
    return out


def _dedupe(values: Iterable[object]) -> list[object]:
    seen: set[object] = set()
    out: list[object] = []
    for value in values:
        key = normalize(value)
        try:
            new = key not in seen
        except TypeError:
            new = True
        else:
            seen.add(key)
        if new:
            out.append(value)
    return out


class TreePatternMatcher:
    """Evaluates tree patterns over a :class:`JSONDocumentStore`."""

    def __init__(self, store: "JSONDocumentStore"):
        self.store = store

    # ------------------------------------------------------------------
    def match(self, pattern: TreePattern,
              parameters: dict[str, object] | None = None,
              pushdown: Row | None = None,
              limit: int | None = None) -> list[Row]:
        """Binding rows of every matching document (index-pruned)."""
        pushdown = pushdown or {}
        candidate_ids = self.candidates(pattern, parameters=parameters,
                                        pushdown=pushdown)
        rows: list[Row] = []
        for doc_id in candidate_ids:
            document = self.store.get(doc_id)
            if document is None:  # pragma: no cover - defensive
                continue
            rows.extend(match_document(pattern, document,
                                       parameters=parameters, pushdown=pushdown))
            if limit is not None and len(rows) >= limit:
                return rows[:limit]
        return rows

    # ------------------------------------------------------------------
    def match_batch(self, pattern: TreePattern,
                    calls: list[tuple[dict[str, object], Row]],
                    limit: int | None = None) -> list[list[Row]]:
        """Answer many ``(parameters, pushdown)`` calls in one pass.

        The candidate set of the pattern's *constant* predicates is
        computed once; each call then only adds its own index lookups
        (resolved parameters and pushed-down bindings) before the
        surviving candidates are verified naively.  The result list is
        aligned with ``calls`` and each entry equals what
        :meth:`match` would have returned for that call.
        """
        if len(calls) <= 1:
            return [self.match(pattern, parameters=parameters, pushdown=pushdown,
                               limit=limit)
                    for parameters, pushdown in calls]
        base = set(self.candidates(pattern))
        results: list[list[Row]] = []
        for parameters, pushdown in calls:
            pushdown = pushdown or {}
            restriction = base
            for leaf in pattern.leaves:
                index = self.store.index_for(leaf.path)
                if index is None:
                    continue
                for predicate in leaf.predicates:
                    if not isinstance(predicate.value, Parameter):
                        continue  # constants already pruned in the base set
                    resolved = _resolve_quietly(predicate, parameters)
                    if resolved is None or resolved.op == "!=":
                        continue
                    restriction = restriction & index.lookup_cmp(resolved.op,
                                                                 resolved.value)
                if leaf.variable is not None and leaf.variable in pushdown:
                    restriction = restriction & index.lookup_eq(pushdown[leaf.variable])
            rows: list[Row] = []
            for doc_id in sorted(restriction, key=self.store.insertion_rank):
                document = self.store.get(doc_id)
                if document is None:  # pragma: no cover - defensive
                    continue
                rows.extend(match_document(pattern, document,
                                           parameters=parameters, pushdown=pushdown))
                if limit is not None and len(rows) >= limit:
                    rows = rows[:limit]
                    break
            results.append(rows)
        return results

    # ------------------------------------------------------------------
    def candidates(self, pattern: TreePattern,
                   parameters: dict[str, object] | None = None,
                   pushdown: Row | None = None) -> list[str]:
        """Candidate document ids after index-based predicate pushdown.

        The result is a superset of the matching documents (``!=``
        predicates are not pruned; everything is re-verified naively),
        in insertion order so results stay deterministic.
        """
        pushdown = pushdown or {}
        restrictions: list[set[str]] = []
        for leaf in pattern.leaves:
            index = self.store.index_for(leaf.path)
            if index is None:
                # Interior (non-leaf) path: no value index, but presence can
                # still prune through the indexes of its descendant leaves.
                restriction = self.store.doc_ids_with_path(leaf.path)
                if not restriction:
                    # The path was never observed: nothing can match.
                    return []
                restrictions.append(restriction)
                continue
            # index.presence is shared state: intersect without mutating it
            # (set & set walks the smaller side, so a selective predicate
            # keeps the whole chain cheap even on a large store).
            restriction = index.presence
            for predicate in leaf.predicates:
                resolved = _resolve_quietly(predicate, parameters)
                if resolved is None or resolved.op == "!=":
                    continue
                restriction = restriction & index.lookup_cmp(resolved.op, resolved.value)
            if leaf.variable is not None and leaf.variable in pushdown:
                restriction = restriction & index.lookup_eq(pushdown[leaf.variable])
            restrictions.append(restriction)
        if not restrictions:
            return []
        restrictions.sort(key=len)
        candidates = restrictions[0]
        for restriction in restrictions[1:]:
            candidates = candidates & restriction
            if not candidates:
                return []
        return sorted(candidates, key=self.store.insertion_rank)

    def selectivity(self, pattern: TreePattern) -> float:
        """Fraction of the store the index pruning retains (1.0 = no pruning)."""
        if len(self.store) == 0:
            return 1.0
        return len(self.candidates(pattern)) / len(self.store)


def _resolve_quietly(predicate: Predicate,
                     parameters: dict[str, object] | None) -> Predicate | None:
    """Resolve a predicate's parameter, or None when it is unbound."""
    if not isinstance(predicate.value, Parameter):
        return predicate
    try:
        return predicate.resolve(parameters)
    except JSONError:
        return None
