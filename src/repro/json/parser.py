"""Parser of the textual tree-pattern syntax.

The syntax is a JSON-flavoured object whose members constrain document
paths::

    { user.screen_name: ?id, entities.hashtags: "sia2016", retweet_count: ?rt >= 100 }

Member keys are dotted paths (or nested objects — ``{ user: { screen_name:
?id } }`` is equivalent to the dotted form).  Path segments may use the
axis wildcards ``*`` (exactly one step, any key) and ``**`` (any chain of
zero or more steps), so ``user.**.name`` reaches ``name`` at any depth
below ``user``.  Member specs are:

``?var``
    bind the value(s) at the path to mediator variable ``var``;
``?var >= 100``
    bind the value and keep only elements satisfying the comparison;
``"constant"`` / ``42`` / ``true`` / ``null`` / ``bareword``
    equality with a constant (string equality is case-insensitive);
``{param}``
    equality with a run-time parameter, bound by an earlier sub-query;
``> 10``, ``!= "x"``, ``<= {max}``
    a bare comparison on the path's values;
``*``
    the path must exist, nothing else.

Constraining the same path twice merges the predicates into one leaf.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.json.pattern import (
    Parameter,
    PatternLeaf,
    Predicate,
    TreePattern,
    make_pattern,
)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<number>-?\d+(?:\.\d+)?)
    | (?P<ident>[A-Za-z_][\w]*)
    | (?P<punct>\*\*|!=|>=|<=|[{}:,?.*=<>])
    """,
    re.VERBOSE,
)

_COMPARISON_TOKENS = {"=", "!=", ">", ">=", "<", "<="}
_KEYWORD_CONSTANTS = {"true": True, "false": False, "null": None}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} in tree pattern",
                             position=position)
        kind = match.lastgroup or "ws"
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], length: int):
        self.tokens = tokens
        self.index = 0
        self.length = length

    # -- token plumbing ------------------------------------------------------
    def peek(self, offset: int = 0) -> _Token | None:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of tree pattern", position=self.length)
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}",
                             position=token.position)
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    # -- grammar -------------------------------------------------------------
    def parse(self) -> TreePattern:
        self.expect("{")
        leaves = self.members(prefix="")
        self.expect("}")
        trailing = self.peek()
        if trailing is not None:
            raise ParseError(f"trailing input after tree pattern: {trailing.text!r}",
                             position=trailing.position)
        return make_pattern(leaves)

    def members(self, prefix: str) -> list[PatternLeaf]:
        leaves: list[PatternLeaf] = []
        if self.at("}"):
            return leaves
        while True:
            leaves.extend(self.member(prefix))
            if self.at(","):
                self.next()
                continue
            return leaves

    def member(self, prefix: str) -> list[PatternLeaf]:
        path = self.key(prefix)
        self.expect(":")
        return self.spec(path)

    def key(self, prefix: str) -> str:
        parts = [self.key_segment()]
        while self.at("."):
            self.next()
            parts.append(self.key_segment())
        part = ".".join(parts)
        return f"{prefix}.{part}" if prefix else part

    def key_segment(self) -> str:
        token = self.next()
        if token.kind == "string":
            return _unquote(token.text)
        if token.kind == "ident":
            return token.text
        if token.text in ("*", "**"):
            # Axis wildcards: "*" = one step with any key, "**" = any
            # chain of zero or more steps (descendant axis).
            return token.text
        raise ParseError(f"expected a field name, found {token.text!r}",
                         position=token.position)

    def ident(self) -> str:
        token = self.next()
        if token.kind != "ident":
            raise ParseError(f"expected an identifier, found {token.text!r}",
                             position=token.position)
        return token.text

    def spec(self, path: str) -> list[PatternLeaf]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of tree pattern", position=self.length)
        # "{" opens either a {param} reference or a nested object.
        if token.text == "{":
            if self._is_parameter_ahead():
                parameter = self.parameter()
                return [PatternLeaf(path=path,
                                    predicates=(Predicate("=", parameter),))]
            self.next()
            leaves = self.members(prefix=path)
            self.expect("}")
            return leaves
        if token.text == "?":
            self.next()
            variable = self.ident()
            predicates: tuple[Predicate, ...] = ()
            ahead = self.peek()
            if ahead is not None and ahead.text in _COMPARISON_TOKENS:
                op = self.next().text
                predicates = (Predicate(op, self.operand()),)
            return [PatternLeaf(path=path, variable=variable, predicates=predicates)]
        if token.text == "*":
            self.next()
            return [PatternLeaf(path=path)]
        if token.text in _COMPARISON_TOKENS:
            op = self.next().text
            return [PatternLeaf(path=path, predicates=(Predicate(op, self.operand()),))]
        return [PatternLeaf(path=path, predicates=(Predicate("=", self.operand()),))]

    def _is_parameter_ahead(self) -> bool:
        one, two = self.peek(1), self.peek(2)
        return (one is not None and one.kind == "ident"
                and two is not None and two.text == "}")

    def parameter(self) -> Parameter:
        self.expect("{")
        name = self.ident()
        self.expect("}")
        return Parameter(name)

    def operand(self) -> object:
        token = self.next()
        if token.kind == "string":
            return _unquote(token.text)
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "ident":
            if token.text in _KEYWORD_CONSTANTS:
                return _KEYWORD_CONSTANTS[token.text]
            # A bare word is a string constant (handy in atom templates).
            return token.text
        if token.text == "{":
            self.index -= 1
            return self.parameter()
        raise ParseError(f"cannot interpret tree-pattern value {token.text!r}",
                         position=token.position)


def parse_pattern(text: str) -> TreePattern:
    """Parse the textual tree-pattern syntax into a :class:`TreePattern`."""
    return _Parser(_tokenize(text), len(text)).parse()


def pattern_to_text(pattern: TreePattern) -> str:
    """Render ``pattern`` in the canonical textual form (round-trips)."""
    return pattern.to_text()


def _unquote(text: str) -> str:
    return re.sub(r"\\(.)", r"\1", text[1:-1])
