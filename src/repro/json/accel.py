"""XPath-accelerator encoding of a JSON document collection.

Every stored document is encoded as parallel columnar arrays of
``(pre, post, level, path-id, value-id)`` in pre-order — the classic
XPath-accelerator layout with *extended* pre-order intervals: a node's
``post`` is the largest pre-order position inside its subtree, so the
structural axes become pure range predicates over sorted integers:

* descendant: ``pre_a < pre_b <= post_a`` (interval containment),
* child: descendant plus ``level_b = level_a + 1`` — and because a
  path-id pins the *whole* key chain from the root, probing the child
  path-id inside the parent's interval needs no level check at all.

Tree patterns therefore evaluate as a DAG of structural range joins:
:func:`bisect.bisect_left` probes over the per-path position lists
replace the per-node recursive descent of the reference matcher.

The encoding is an HTAP-style read replica (cf. Polynesia): built
lazily at the store's current version, repaired incrementally on insert
by *appending* the new document's intervals, and rebuilt from scratch
only on removal.  Snapshots share the same :class:`StoreEncoding`
object through a watermarked :class:`EncodingView` — a pinned view
carries the ``(doc_limit, node_limit)`` it was created with and clamps
every probe below those, so post-pin writes (which only ever append)
are invisible to it.

Node model (must agree exactly with the reference matcher's
:func:`repro.json.matcher.leaf_values`): object members become child
nodes under their key; a list value *fans out* — each dict element
becomes an object node and every other element (scalars, ``None``,
nested lists, which stay opaque) becomes a leaf node, all under the
list's key; empty lists contribute no nodes.  :func:`iter_child_items`
is the single definition of that model, used by the encoder and by the
wildcard reference walker alike.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, Optional

from repro.json.index import compare, normalize
from repro.json.pattern import Predicate, TreePattern, is_wildcard_path
from repro.obs.metrics import get_registry
from repro.obs.spans import span

#: The interned path-id of the (virtual) document root.
ROOT_PID = 0

#: Structural-join operators a compiled pattern path consists of.
OP_CHILD = "child"            # children with a fixed key (path-id probe)
OP_CHILD_ANY = "child-any"    # all children (sibling-jump walk)
OP_DESC = "desc"              # descendants with a fixed key (label probe)
OP_DESC_ANY = "desc-any"      # all strict descendants (interval scan)
OP_DESC_SELF = "desc-self"    # the node itself plus its descendants

#: Vids below zero mark values excluded from interning (containers, whose
#: normalised key would cost a full ``str()`` of the subtree).
OPAQUE_VID = -1

#: Bounded size of the per-encoding axis-statistics cache.
_STATS_CACHE_LIMIT = 64


def iter_child_items(value: Any) -> Iterator[tuple[str, Any]]:
    """The ``(key, raw)`` child nodes of one raw value, in document order.

    This is the single source of truth for the node model shared by the
    encoder and the wildcard reference walker; see the module docstring.
    """
    if not isinstance(value, dict):
        return
    for key, child in value.items():
        if isinstance(child, list):
            for item in child:
                yield key, item
        else:
            yield key, child


def compile_path_ops(path: str) -> tuple[tuple[str, Optional[str]], ...]:
    """Compile a dotted pattern path into structural-join operators.

    Concrete segments become child steps, ``*`` a label-free child step,
    and a ``**`` run turns the following step into a descendant step; a
    trailing ``**`` closes with descendant-or-self (or plain descendants
    when the whole path is wildcards — the root is never a result node).
    """
    ops: list[tuple[str, Optional[str]]] = []
    pending_descendant = False
    for segment in path.split("."):
        if segment == "**":
            pending_descendant = True
            continue
        if segment == "*":
            ops.append((OP_DESC_ANY if pending_descendant else OP_CHILD_ANY, None))
        else:
            ops.append((OP_DESC if pending_descendant else OP_CHILD, segment))
        pending_descendant = False
    if pending_descendant:
        if ops:
            ops.append((OP_DESC_SELF, None))
        else:
            ops.append((OP_DESC_ANY, None))
    return tuple(ops)


class StoreEncoding:
    """Append-only columnar arrays over one store's documents.

    All mutation happens under ``_lock`` and strictly *appends*;
    ``doc_count``/``node_count`` are published only after a document is
    fully encoded, so a view clamped at older counts always reads a
    consistent, immutable prefix.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # -- per-node columns, index == pre-order position ------------------
        self.posts: list[int] = []     # max pre inside the node's subtree
        self.levels: list[int] = []    # depth (document root = 0)
        self.pids: list[int] = []      # interned path-id (key chain)
        self.vids: list[int] = []      # interned value-id (OPAQUE_VID = none)
        self.raws: list[Any] = []      # the node's raw value (dict for objects)
        # -- per-document -----------------------------------------------------
        self.doc_starts: list[int] = []  # pre position of each document root
        self.doc_ids: list[str] = []
        self.ordinals: dict[str, int] = {}
        # -- path / label / value dictionaries --------------------------------
        self.pid_paths: list[str] = [""]           # pid -> dotted path
        self.path_nodes: list[list[int]] = [[]]    # pid -> sorted positions
        self.child_pid: dict[tuple[int, str], int] = {}
        self.label_nodes: dict[str, list[int]] = {}  # key -> sorted positions
        self._vid_intern: dict[tuple[str, object], int] = {}
        self.vid_reprs: list[Any] = []             # vid -> representative raw
        # -- published watermarks ---------------------------------------------
        self.doc_count = 0
        self.node_count = 0
        self._stats_cache: dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def extend(self, items: Iterable[tuple[str, dict]]) -> int:
        """Append every ``(doc_id, document)`` not already encoded.

        "Already encoded" means encoded *as that exact object*: an upsert
        replaces the stored document wholesale, so an id whose encoded
        root raw is a different object is re-appended and its ordinal
        repointed at the fresh copy.  The old copy becomes a dead
        interval no ordinal reaches (views created before the repoint
        clamp it out by watermark or by the identity check in
        :meth:`EncodingView.ordinal`).
        """
        added = 0
        with self._lock:
            with span("json.accel.encode") as sp:
                for doc_id, document in items:
                    ordinal = self.ordinals.get(doc_id)
                    if ordinal is not None and \
                            self.raws[self.doc_starts[ordinal]] is document:
                        continue
                    self._encode(doc_id, document)
                    added += 1
                if sp is not None:
                    sp.set(documents=added, total_documents=self.doc_count,
                           total_nodes=self.node_count)
            if added:
                self._stats_cache.clear()
                get_registry().counter("json.accel.builds").inc()
        return added

    def _encode(self, doc_id: str, document: dict) -> None:
        posts, levels, pids, raws = self.posts, self.levels, self.pids, self.raws
        vids, path_nodes, label_nodes = self.vids, self.path_nodes, self.label_nodes
        child_pid = self.child_pid
        self.doc_starts.append(len(posts))
        self.doc_ids.append(doc_id)
        self.ordinals[doc_id] = len(self.doc_ids) - 1
        # Iterative pre-order encode; an int on the stack is a close
        # marker fixing that node's post to the last position emitted
        # inside its subtree.  Depth-10k documents must not recurse.
        stack: list = [(document, ROOT_PID, 0, None)]
        while stack:
            item = stack.pop()
            if type(item) is int:
                posts[item] = len(posts) - 1
                continue
            raw, pid, level, key = item
            position = len(posts)
            posts.append(position)  # leaf default; close marker overwrites
            levels.append(level)
            pids.append(pid)
            raws.append(raw)
            vids.append(self._intern(raw))
            path_nodes[pid].append(position)
            if key is not None:
                bucket = label_nodes.get(key)
                if bucket is None:
                    bucket = label_nodes[key] = []
                bucket.append(position)
            if isinstance(raw, dict) and raw:
                stack.append(position)
                children = []
                for child_key, child_raw in iter_child_items(raw):
                    cpid = child_pid.get((pid, child_key))
                    if cpid is None:
                        cpid = len(self.pid_paths)
                        child_pid[(pid, child_key)] = cpid
                        parent_path = self.pid_paths[pid]
                        self.pid_paths.append(
                            f"{parent_path}.{child_key}" if parent_path else child_key)
                        path_nodes.append([])
                    children.append((child_raw, cpid, level + 1, child_key))
                stack.extend(reversed(children))
        self.doc_count = len(self.doc_ids)
        self.node_count = len(posts)

    def _intern(self, value: Any) -> int:
        if isinstance(value, (dict, list, set)):
            # Containers stay opaque: their normalised key would cost a
            # full str() of the subtree per node (quadratic on deep docs).
            return OPAQUE_VID
        if isinstance(value, bool):
            key = ("b", value)
        elif isinstance(value, str):
            key = ("s", value.lower())
        elif isinstance(value, (int, float)):
            key = ("n", value)
        else:
            try:
                key = ("o", normalize(value))
            except TypeError:  # pragma: no cover - unhashable exotic value
                return OPAQUE_VID
        vid = self._vid_intern.get(key)
        if vid is None:
            try:
                vid = len(self.vid_reprs)
                self._vid_intern[key] = vid
                self.vid_reprs.append(value)
            except TypeError:  # pragma: no cover - unhashable exotic value
                return OPAQUE_VID
        return vid

    # ------------------------------------------------------------------
    # Views and path resolution
    # ------------------------------------------------------------------
    def view_for(self, doc_count: int) -> "EncodingView":
        """A watermarked view over the first ``doc_count`` documents."""
        with self._lock:
            if doc_count >= self.doc_count:
                return EncodingView(self, self.doc_count, self.node_count)
            return EncodingView(self, doc_count, self.doc_starts[doc_count])

    def pid_of(self, path: str) -> Optional[int]:
        """The interned path-id of a concrete dotted path (None = unseen)."""
        pid = ROOT_PID
        for segment in path.split("."):
            pid = self.child_pid.get((pid, segment))
            if pid is None:
                return None
        return pid

    # ------------------------------------------------------------------
    # Axis statistics
    # ------------------------------------------------------------------
    def axis_stats(self, pattern: TreePattern, node_limit: int) -> Optional[dict]:
        """Exact per-axis cardinalities of a pattern's concrete paths.

        Returns per leaf the number of documents exhibiting the path and
        the number of nodes at it (the fan-out numerator), plus the size
        of the exact document-set intersection across all leaves — the
        numbers :mod:`repro.stats.estimators` turns into a row estimate.
        None when the pattern uses wildcard paths (no single path-id).
        """
        paths = tuple(leaf.path for leaf in pattern.leaves)
        key = (paths, node_limit)
        with self._lock:
            cached = self._stats_cache.get(key)
            if cached is not None:
                return cached
        if any(is_wildcard_path(path) for path in paths):
            return None
        doc_starts = self.doc_starts
        leaves: list[dict] = []
        common: Optional[set[int]] = None
        for path in paths:
            pid = self.pid_of(path)
            ordinals: set[int] = set()
            nodes = 0
            if pid is not None:
                positions = self.path_nodes[pid]
                hi = bisect_left(positions, node_limit)
                nodes = hi
                for position in positions[:hi]:
                    ordinals.add(bisect_right(doc_starts, position) - 1)
            leaves.append({"path": path, "documents": len(ordinals),
                           "nodes": nodes})
            common = ordinals if common is None else (common & ordinals)
        stats = {"leaves": leaves,
                 "documents": len(common) if common is not None else 0}
        with self._lock:
            if len(self._stats_cache) >= _STATS_CACHE_LIMIT:
                self._stats_cache.pop(next(iter(self._stats_cache)))
            self._stats_cache[key] = stats
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StoreEncoding(documents={self.doc_count}, "
                f"nodes={self.node_count}, paths={len(self.pid_paths)})")


def structural_row_estimate(view: "EncodingView",
                            pattern: TreePattern) -> Optional[float]:
    """Exact-statistics row estimate of a purely structural pattern.

    For patterns without predicates or bound variables the encoding
    answers exactly: the document cardinality is the intersection of the
    per-axis document sets, and each variable leaf multiplies the rows
    by its average fan-out (nodes per exhibiting document).  None when
    the pattern uses wildcard paths (the caller falls back to legacy
    index statistics).
    """
    stats = view.encoding.axis_stats(pattern, view.node_limit)
    if stats is None:
        return None
    rows = float(stats["documents"])
    for leaf, leaf_stats in zip(pattern.leaves, stats["leaves"]):
        if leaf.variable is not None and leaf_stats["documents"]:
            rows *= max(1.0, leaf_stats["nodes"] / leaf_stats["documents"])
    return rows


class EncodingView:
    """An immutable watermarked window over a :class:`StoreEncoding`.

    The encoding only ever appends; clamping every probe below
    ``(doc_limit, node_limit)`` makes the view a consistent snapshot no
    matter how far the shared encoding has grown since.
    """

    __slots__ = ("encoding", "doc_limit", "node_limit")

    def __init__(self, encoding: StoreEncoding, doc_limit: int, node_limit: int):
        self.encoding = encoding
        self.doc_limit = doc_limit
        self.node_limit = node_limit

    # ------------------------------------------------------------------
    def ordinal(self, doc_id: str,
                document: Optional[dict] = None) -> Optional[int]:
        """The document's ordinal, or None when outside this view.

        When the caller passes the store's current ``document`` object,
        the encoded copy must be that exact object: after an upsert the
        shared ordinal may point at a copy this store never held (for
        example when a snapshot and the live store diverged), and the
        caller must fall back to the reference tree-walk.
        """
        ordinal = self.encoding.ordinals.get(doc_id)
        if ordinal is None or ordinal >= self.doc_limit:
            return None
        if document is not None and \
                self.encoding.raws[self.encoding.doc_starts[ordinal]] is not document:
            return None
        return ordinal

    def doc_interval(self, ordinal: int) -> tuple[int, int]:
        """The half-open pre-order interval ``[start, end)`` of a document."""
        starts = self.encoding.doc_starts
        start = starts[ordinal]
        end = starts[ordinal + 1] if ordinal + 1 < self.doc_limit else self.node_limit
        return start, end

    # ------------------------------------------------------------------
    def compile(self, pattern: TreePattern,
                resolved: list[list[Predicate]]) -> "CompiledPattern":
        """Compile a pattern (with resolved predicates) for this view."""
        return CompiledPattern(self, pattern, resolved)

    def eval_ops(self, ops, start: int, end: int) -> list[int]:
        """Evaluate structural ops from a document root; sorted positions."""
        encoding = self.encoding
        posts, pids = encoding.posts, encoding.pids
        path_nodes, label_nodes = encoding.path_nodes, encoding.label_nodes
        child_pid = encoding.child_pid
        nodes: list[int] = [start]
        for op, label in ops:
            out: set[int] = set()
            for a in nodes:
                post_a = posts[a]
                if op == OP_CHILD:
                    cpid = child_pid.get((pids[a], label))
                    if cpid is None:
                        continue
                    positions = path_nodes[cpid]
                    lo = bisect_right(positions, a)
                    hi = bisect_right(positions, post_a, lo)
                    out.update(positions[lo:hi])
                elif op == OP_DESC:
                    positions = label_nodes.get(label)
                    if not positions:
                        continue
                    lo = bisect_right(positions, a)
                    hi = bisect_right(positions, post_a, lo)
                    out.update(positions[lo:hi])
                elif op == OP_CHILD_ANY:
                    p = a + 1
                    while p <= post_a:  # sibling jumps: O(#children)
                        out.add(p)
                        p = posts[p] + 1
                elif op == OP_DESC_ANY:
                    out.update(range(a + 1, post_a + 1))
                else:  # OP_DESC_SELF
                    out.update(range(a, post_a + 1))
            if not out:
                return []
            nodes = sorted(out)
        return nodes


class CompiledPattern:
    """One pattern compiled against one view: per-leaf probe closures."""

    __slots__ = ("view", "pattern", "leaves")

    def __init__(self, view: EncodingView, pattern: TreePattern,
                 resolved: list[list[Predicate]]):
        self.view = view
        self.pattern = pattern
        self.leaves = [CompiledLeaf(view, leaf.path, predicates)
                       for leaf, predicates in zip(pattern.leaves, resolved)]

    def leaf_keeps(self, ordinal: int) -> Optional[list[list[Any]]]:
        """Kept raw values per leaf for one document; None = no match."""
        start, end = self.view.doc_interval(ordinal)
        keeps: list[list[Any]] = []
        for leaf in self.leaves:
            kept = leaf.kept(start, end)
            if not kept:
                return None
            keeps.append(kept)
        return keeps


class CompiledLeaf:
    """One pattern leaf compiled to a structural probe plus value filter."""

    __slots__ = ("view", "predicates", "positions", "positions_hi", "ops",
                 "_vid_cache")

    def __init__(self, view: EncodingView, path: str,
                 predicates: list[Predicate]):
        self.view = view
        self.predicates = predicates
        self._vid_cache: dict[int, bool] = {}
        if is_wildcard_path(path):
            self.positions = None
            self.positions_hi = 0
            self.ops = compile_path_ops(path)
        else:
            self.ops = None
            pid = view.encoding.pid_of(path)
            if pid is None:
                self.positions = []
                self.positions_hi = 0
            else:
                self.positions = view.encoding.path_nodes[pid]
                self.positions_hi = bisect_left(self.positions, view.node_limit)

    def node_positions(self, start: int, end: int) -> list[int]:
        """Matching node positions inside one document interval."""
        if self.ops is not None:
            return self.view.eval_ops(self.ops, start, end)
        positions = self.positions
        lo = bisect_left(positions, start, 0, self.positions_hi)
        hi = bisect_left(positions, end, lo, self.positions_hi)
        return positions[lo:hi]

    def kept(self, start: int, end: int) -> list[Any]:
        """Raw values at matching nodes that pass the leaf's predicates.

        Predicate outcomes are memoised per value-id: within one call a
        repeated value (hashtags, screen names) is compared once.
        """
        positions = self.node_positions(start, end)
        if not positions:
            return []
        encoding = self.view.encoding
        raws = encoding.raws
        predicates = self.predicates
        if not predicates:
            return [raws[p] for p in positions]
        vids, reprs, cache = encoding.vids, encoding.vid_reprs, self._vid_cache
        out: list[Any] = []
        for p in positions:
            vid = vids[p]
            if vid < 0:
                raw = raws[p]
                if all(compare(pr.op, raw, pr.value) for pr in predicates):
                    out.append(raw)
                continue
            ok = cache.get(vid)
            if ok is None:
                representative = reprs[vid]
                ok = all(compare(pr.op, representative, pr.value)
                         for pr in predicates)
                cache[vid] = ok
            if ok:
                out.append(raws[p])
        return out
