"""JSON document model: tree-pattern queries over native JSON documents.

The paper's mixed instances include JSON sources (the running example
queries tweets as JSON documents, Figure 2); this package is their
substrate:

* :mod:`repro.json.pattern` — the tree-pattern AST (paths, variables,
  predicates, run-time parameters);
* :mod:`repro.json.parser` — the textual pattern syntax
  (``{ user.screen_name: ?id, entities.hashtags: "sia2016" }``);
* :mod:`repro.json.store` — an in-memory document store maintaining one
  inverted :class:`~repro.json.index.PathIndex` per dotted path;
* :mod:`repro.json.matcher` — index-assisted pattern evaluation with a
  naive reference implementation.

The mediator-facing wrapper (:class:`repro.core.sources.JSONSource`)
lives with the other source wrappers in :mod:`repro.core.sources`.
"""

from repro.json.accel import (
    CompiledPattern,
    EncodingView,
    StoreEncoding,
    compile_path_ops,
    iter_child_items,
)
from repro.json.index import PathIndex, compare, normalize
from repro.json.matcher import TreePatternMatcher, leaf_values, match_document
from repro.json.parser import parse_pattern, pattern_to_text
from repro.json.pattern import (
    Parameter,
    PatternLeaf,
    Predicate,
    TreePattern,
    is_wildcard_path,
    make_pattern,
    path_matches,
)
from repro.json.store import JSONDocumentStore

__all__ = [
    "PathIndex",
    "compare",
    "normalize",
    "TreePatternMatcher",
    "leaf_values",
    "match_document",
    "parse_pattern",
    "pattern_to_text",
    "Parameter",
    "PatternLeaf",
    "Predicate",
    "TreePattern",
    "is_wildcard_path",
    "make_pattern",
    "path_matches",
    "JSONDocumentStore",
    "CompiledPattern",
    "EncodingView",
    "StoreEncoding",
    "compile_path_ops",
    "iter_child_items",
]
