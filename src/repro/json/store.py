"""In-memory JSON document store with per-path indexes.

The store is the substrate behind :class:`repro.core.sources.JSONSource`:
it keeps native (nested) JSON documents, maintains one
:class:`~repro.json.index.PathIndex` per observed dotted path, and can
produce the :class:`~repro.digest.dataguide.JSONDataguide` structural
summary the digests and the planner's estimates rely on.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, TYPE_CHECKING

from repro.core.deltas import INSERT, REMOVE, UPSERT, DeltaJournal
from repro.errors import JSONError
from repro.fulltext.document import Document
from repro.json.accel import EncodingView, StoreEncoding
from repro.json.index import PathIndex
from repro.json.pattern import is_wildcard_path, path_matches
from repro.locks import RWLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.digest.dataguide import JSONDataguide


class JSONDocumentStore:
    """A named collection of JSON documents, indexed by dotted path."""

    def __init__(self, name: str = "documents", id_field: str = "id",
                 text_path: str | None = None):
        self.name = name
        self.id_field = id_field
        #: Path of the main human-readable content (exposed by generated
        #: queries, like the full-text store's default field).
        self.text_path = text_path
        self._documents: dict[str, dict[str, Any]] = {}
        self._leaves: dict[str, list[tuple[str, object]]] = {}
        self._indexes: dict[str, PathIndex] = {}
        self._ranks: dict[str, int] = {}
        self._next_rank = 0
        self._dataguide: JSONDataguide | None = None
        self._version = 0
        self._journal = DeltaJournal()
        self._rwlock = RWLock()
        self._snapshot_state: tuple[int, "JSONDocumentStore"] | None = None
        self._snapshot_lock = threading.Lock()
        #: Columnar XPath-accelerator replica (built lazily; appended on
        #: insert and upsert, dropped — full rebuild — on removal).
        self._accel: StoreEncoding | None = None
        self._accel_lock = threading.Lock()
        #: Documents written since the encoding last synced, and the
        #: number of encoded documents this store's views cover.
        self._accel_pending: dict[str, dict[str, Any]] = {}
        self._accel_limit = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (used for cache invalidation)."""
        return self._version

    @property
    def journal(self) -> DeltaJournal:
        """The store's typed mutation log (shared with snapshots)."""
        return self._journal

    def deltas_since(self, version: int, upto: int | None = None):
        """The unbroken delta chain ``version -> upto`` (None on a gap)."""
        target = self._version if upto is None else upto
        return self._journal.since(version, target)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, document: dict[str, Any]) -> str:
        """Store (or replace) one document; returns its id.

        Replacement is append-friendly: the old copy is de-indexed, the
        new one indexed and queued for the accelerator encoding — the
        encoding is kept, not discarded — and the version is bumped
        exactly once.
        """
        doc_id, stored = self._prepare(document)
        with self._rwlock.write_locked():
            replaced = self._deindex_unlocked(doc_id)
            self._index_unlocked(doc_id, stored)
            self._dataguide = None
            pre = self._version
            self._version += 1
            entry = self._journal.record(pre, pre + 1,
                                         UPSERT if replaced else INSERT,
                                         (stored,))
        self._journal.notify(entry)
        return doc_id

    def add_all(self, documents: Iterable[dict[str, Any]]) -> int:
        """Store many documents; returns how many were added.

        The write lock is held across the whole batch, so a concurrent
        snapshot sees all of it or none of it — and the whole batch is
        ONE version bump, so one ingest invalidates derived state once,
        not once per document.
        """
        entry = None
        with self._rwlock.write_locked():
            added: list[dict[str, Any]] = []
            replaced = False
            pre = self._version
            try:
                for document in documents:
                    doc_id, stored = self._prepare(document)
                    replaced = self._deindex_unlocked(doc_id) or replaced
                    self._index_unlocked(doc_id, stored)
                    added.append(stored)
            finally:
                # Even a partially applied batch (a malformed document
                # mid-way) must advance the version exactly once: some
                # documents landed, so version equality has to keep
                # meaning "unchanged".
                if added:
                    self._dataguide = None
                    self._version += 1
                    entry = self._journal.record(
                        pre, pre + 1, UPSERT if replaced else INSERT, added)
        if entry is not None:
            self._journal.notify(entry)
        return len(added)

    def remove(self, doc_id: str) -> bool:
        """Drop a document (and its index entries); True when it existed."""
        with self._rwlock.write_locked():
            if not self._deindex_unlocked(doc_id):
                return False
            self._dataguide = None
            # The encoding is append-only; a removal invalidates it and
            # the next accelerated query rebuilds from scratch.  Shared
            # snapshot views keep their own (old) encoding object.
            self._accel = None
            self._accel_pending = {}
            self._accel_limit = 0
            pre = self._version
            self._version += 1
            entry = self._journal.record(pre, pre + 1, REMOVE, (doc_id,))
        self._journal.notify(entry)
        return True

    # ------------------------------------------------------------------
    def _prepare(self, document: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        """Validate one incoming document; returns ``(doc_id, copy)``."""
        if not isinstance(document, dict):
            raise JSONError(f"JSON store {self.name!r} only stores objects, "
                            f"got {type(document).__name__}")
        stored = _copy_json(document)
        raw_id = Document(doc_id="_", fields=stored).get(self.id_field)
        if raw_id is None:
            raise JSONError(
                f"document is missing its id field {self.id_field!r}: {document}"
            )
        return str(raw_id), stored

    def _deindex_unlocked(self, doc_id: str) -> bool:
        """Drop a document's entries everywhere; True when it existed."""
        if doc_id not in self._documents:
            return False
        for path, value in self._leaves.pop(doc_id, []):
            index = self._indexes.get(path)
            if index is not None:
                index.remove(doc_id, value)
                if not index.presence:
                    del self._indexes[path]
        del self._documents[doc_id]
        del self._ranks[doc_id]
        return True

    def _index_unlocked(self, doc_id: str, stored: dict[str, Any]) -> None:
        """Store and index one (validated, copied) document."""
        leaves = list(Document(doc_id=doc_id, fields=stored).flat_fields())
        self._documents[doc_id] = stored
        self._leaves[doc_id] = leaves
        self._ranks[doc_id] = self._next_rank
        self._next_rank += 1
        for path, value in leaves:
            index = self._indexes.get(path)
            if index is None:
                index = PathIndex(path)
                self._indexes[path] = index
            index.add(doc_id, value)
        if self._accel is not None:
            self._accel_pending[doc_id] = stored

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    def snapshot(self) -> "JSONDocumentStore":
        """A frozen copy of the store at its current version (memoised).

        Stored documents and per-document leaf lists are never mutated in
        place (``add`` replaces them wholesale), so they are shared; the
        containers and path indexes are copied.
        """
        with self._rwlock.read_locked():
            state = self._snapshot_state
            if state is not None and state[0] == self._version:
                return state[1]
            with self._snapshot_lock:
                state = self._snapshot_state
                if state is not None and state[0] == self._version:
                    return state[1]
                frozen = JSONDocumentStore.__new__(JSONDocumentStore)
                frozen.name = self.name
                frozen.id_field = self.id_field
                frozen.text_path = self.text_path
                frozen._documents = dict(self._documents)
                frozen._leaves = dict(self._leaves)
                frozen._indexes = {path: index._copy()
                                   for path, index in self._indexes.items()}
                frozen._ranks = dict(self._ranks)
                frozen._next_rank = self._next_rank
                frozen._dataguide = self._dataguide
                frozen._version = self._version
                # Shared journal: a frozen copy never writes, it only
                # replays history up to its own (frozen) version.
                frozen._journal = self._journal
                frozen._rwlock = RWLock()
                frozen._snapshot_state = (frozen._version, frozen)
                frozen._snapshot_lock = threading.Lock()
                # The encoding is shared, not re-derived: it only ever
                # appends, and the snapshot clamps its views at its own
                # watermark, so later writes stay invisible to it.  The
                # pending set is copied: the snapshot syncs (or skips,
                # when the live store encoded the very same objects
                # first) its own backlog on first view.
                frozen._accel = self._accel
                frozen._accel_lock = threading.Lock()
                frozen._accel_pending = dict(self._accel_pending)
                frozen._accel_limit = self._accel_limit
                self._snapshot_state = (self._version, frozen)
                return frozen

    # ------------------------------------------------------------------
    # XPath-accelerator encoding
    # ------------------------------------------------------------------
    def encoding_view(self) -> EncodingView:
        """A consistent columnar view over exactly this store's documents.

        Built lazily at first use; inserts *and upserts* since the last
        view are appended to the shared encoding (an upsert repoints the
        document's ordinal at its fresh copy, leaving the old interval
        dead), while a removal dropped it entirely (see :meth:`remove`).
        The returned view is clamped at this store's own watermark, so a
        snapshot sharing the live store's encoding never sees post-pin
        writes — and an ordinal repointed *past* a view's watermark makes
        the matcher fall back to the reference tree-walk for that
        document, never read a stale copy.
        """
        with self._rwlock.read_locked():
            with self._accel_lock:
                encoding = self._accel
                count = len(self._documents)
                if encoding is None:
                    encoding = StoreEncoding()
                    encoding.extend(self._documents.items())
                    self._accel = encoding
                    self._accel_pending = {}
                    self._accel_limit = encoding.doc_count
                elif self._accel_pending:
                    pending = self._accel_pending
                    self._accel_pending = {}
                    if encoding.doc_count + len(pending) > 2 * count + 64:
                        # Dead upsert copies dominate the shared arrays:
                        # compact by rebuilding privately (snapshots keep
                        # the old encoding object).
                        encoding = StoreEncoding()
                        encoding.extend(self._documents.items())
                        self._accel = encoding
                    else:
                        encoding.extend(pending.items())
                    self._accel_limit = encoding.doc_count
                return encoding.view_for(self._accel_limit)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, doc_id: str) -> dict[str, Any] | None:
        """The stored document with ``doc_id`` (or None)."""
        return self._documents.get(doc_id)

    def documents(self) -> list[dict[str, Any]]:
        """Every stored document, in insertion order."""
        return list(self._documents.values())

    def document_ids(self) -> list[str]:
        """Every document id, in insertion order."""
        return list(self._documents)

    def items(self) -> Iterable[tuple[str, dict[str, Any]]]:
        """(doc_id, document) pairs, in insertion order."""
        return self._documents.items()

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    # ------------------------------------------------------------------
    # Indexes and statistics
    # ------------------------------------------------------------------
    def paths(self) -> list[str]:
        """Every indexed dotted path, sorted."""
        return sorted(self._indexes)

    def index_for(self, path: str) -> PathIndex | None:
        """The :class:`PathIndex` of ``path`` (None when never observed)."""
        return self._indexes.get(path)

    def values_at(self, path: str) -> list[object]:
        """Every raw leaf value observed at ``path`` (duplicates included)."""
        return self.values_by_path().get(path, [])

    def values_by_path(self) -> dict[str, list[object]]:
        """Raw leaf values grouped by path, in one pass over the store."""
        grouped: dict[str, list[object]] = {}
        for leaves in self._leaves.values():
            for path, value in leaves:
                grouped.setdefault(path, []).append(value)
        return grouped

    def doc_ids_with_path(self, path: str) -> set[str]:
        """Documents exhibiting ``path`` — a leaf path (via its index), an
        interior node (via the indexes of its descendant leaves), or a
        wildcard path (via every indexed path it can match a prefix of)."""
        if is_wildcard_path(path):
            out: set[str] = set()
            for indexed_path, index in self._indexes.items():
                if path_matches(path, indexed_path, prefix=True):
                    out |= index.presence
            return out
        index = self._indexes.get(path)
        if index is not None:
            return set(index.presence)
        prefix = path + "."
        out = set()
        for indexed_path, descendant in self._indexes.items():
            if indexed_path.startswith(prefix):
                out |= descendant.presence
        return out

    def insertion_rank(self, doc_id: str) -> int:
        """Monotonic insertion order of ``doc_id`` (for deterministic output)."""
        return self._ranks.get(doc_id, -1)

    def dataguide(self) -> "JSONDataguide":
        """The (cached) structural summary of the collection."""
        if self._dataguide is None:
            # Imported lazily: repro.digest builds digests *of* sources and
            # already depends on repro.core, which depends on this package.
            from repro.digest.dataguide import JSONDataguide

            self._dataguide = JSONDataguide.build(self._documents.values(),
                                                  name=self.name)
        return self._dataguide

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"JSONDocumentStore(name={self.name!r}, documents={len(self)}, "
                f"paths={len(self._indexes)})")


def _copy_json(value: Any) -> Any:
    """Structural copy of a JSON tree without recursion.

    Replaces ``copy.deepcopy`` on the insert path: pathologically deep
    documents (depth 10k+) must not blow the interpreter's recursion
    limit.  Dict and list containers are copied; every other value —
    immutable in well-formed JSON — is shared.
    """
    if isinstance(value, dict):
        root: Any = {}
    elif isinstance(value, list):
        root = []
    else:
        return value
    stack: list[tuple[Any, Any]] = [(value, root)]
    while stack:
        source, target = stack.pop()
        if isinstance(source, dict):
            for key, child in source.items():
                if isinstance(child, (dict, list)):
                    twin: Any = {} if isinstance(child, dict) else []
                    stack.append((child, twin))
                    target[key] = twin
                else:
                    target[key] = child
        else:
            for child in source:
                if isinstance(child, (dict, list)):
                    twin = {} if isinstance(child, dict) else []
                    stack.append((child, twin))
                    target.append(twin)
                else:
                    target.append(child)
    return root
