"""Synthetic external RDF sources: a DBPedia-like and an IGN-like graph.

The paper's mixed instance includes "RDF data sources, such as French
territory description data from the National Geographic Institute (IGN),
and LOD sources, in particular DBPedia".  Both are replaced by small
deterministic graphs that reuse the identifiers appearing elsewhere in the
instance (DBPedia URIs stored in the glue graph, INSEE department codes
stored in the relational source) so the cross-source joins the paper
relies on exist.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.politicians import Politician
from repro.datasets.vocabulary import DEPARTMENTS
from repro.rdf.graph import Graph
from repro.rdf.terms import RDF_TYPE, Triple, URI, literal, uri

DBPEDIA_NS = "http://dbpedia.org/ontology/"
IGN_NS = "http://data.ign.fr/def/geofla#"


def dbo(local: str) -> URI:
    """A URI in the DBPedia ontology namespace."""
    return URI(DBPEDIA_NS + local)


def ign(local: str) -> URI:
    """A URI in the IGN GEOFLA namespace."""
    return URI(IGN_NS + local)


def build_dbpedia_graph(politicians: Sequence[Politician], seed: int = 3) -> Graph:
    """A DBPedia-like graph describing the politicians of the landscape.

    Resources are identified by the very DBPedia URIs recorded in the glue
    graph (``ttn:dbpediaURI``), providing the URI-reuse join the paper
    highlights.
    """
    rng = random.Random(seed)
    graph = Graph(name="dbpedia")
    for politician in politicians:
        subject = uri(politician.dbpedia_uri)
        graph.add(Triple(subject, RDF_TYPE, dbo("Politician")))
        graph.add(Triple(subject, dbo("birthYear"),
                         literal(1945 + rng.randrange(40))))
        department = politician.birth_department
        graph.add(Triple(subject, dbo("birthPlace"),
                         URI(f"http://data.ign.fr/id/departement/{department}")))
        graph.add(Triple(subject, dbo("abstract"),
                         literal(f"{politician.name} is a French politician "
                                 f"({politician.group}).", language="en")))
        graph.add(Triple(subject, dbo("twitterHandle"), literal(politician.twitter_account)))
        if rng.random() < 0.4:
            graph.add(Triple(subject, dbo("almaMater"),
                             URI("http://dbpedia.org/resource/Sciences_Po")))
    return graph


def build_ign_graph(seed: int = 4) -> Graph:
    """An IGN-like graph describing French departments and regions.

    Department INSEE codes are stored as literals, matching the
    ``departments.code`` column of the INSEE database ("common naming for
    machines").
    """
    rng = random.Random(seed)
    graph = Graph(name="ign")
    regions = sorted({region for _, _, region in DEPARTMENTS})
    for region in regions:
        region_uri = URI(f"http://data.ign.fr/id/region/{_slug(region)}")
        graph.add(Triple(region_uri, RDF_TYPE, ign("Region")))
        graph.add(Triple(region_uri, ign("nom"), literal(region)))
    for code, name, region in DEPARTMENTS:
        dept_uri = URI(f"http://data.ign.fr/id/departement/{code}")
        region_uri = URI(f"http://data.ign.fr/id/region/{_slug(region)}")
        graph.add(Triple(dept_uri, RDF_TYPE, ign("Departement")))
        graph.add(Triple(dept_uri, ign("codeINSEE"), literal(code)))
        graph.add(Triple(dept_uri, ign("nom"), literal(name)))
        graph.add(Triple(dept_uri, ign("region"), region_uri))
        graph.add(Triple(dept_uri, ign("superficieKm2"),
                         literal(round(1000 + rng.random() * 9000, 1))))
    return graph


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text.lower()).strip("-")
