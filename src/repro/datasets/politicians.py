"""Synthetic politicians, parties and the glue RDF graph.

The paper's glue graph "contains basic (name, gender, date and place of
birth, ...) and detailed (DBPedia URI, personal website, Twitter ID,
Facebook ID, current political position, party affiliations, parliament
and senate group affiliations ...) information of top French politicians,
as well as political parties and currents".  This module generates a
deterministic population of that shape and converts it to RDF.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.vocabulary import (
    DEPARTMENTS,
    EUROPEAN_GROUPS,
    FIRST_NAMES,
    LAST_NAMES,
    PARTIES_BY_GROUP,
    POLITICAL_GROUPS,
    POSITIONS,
)
from repro.errors import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.schema import RDFSchema
from repro.rdf.terms import FOAF_NS, RDF_TYPE, TATOOINE_NS, Triple, URI, literal, uri


def ttn(local: str) -> URI:
    """Build a URI in the TATOOINE application namespace."""
    return URI(TATOOINE_NS + local)


@dataclass(frozen=True)
class Party:
    """A political party with its current (group) and European affiliation."""

    party_id: str
    name: str
    group: str
    european_group: str

    @property
    def uri(self) -> URI:
        return ttn(self.party_id)


@dataclass(frozen=True)
class Politician:
    """One synthetic politician."""

    politician_id: str
    name: str
    gender: str
    party_id: str
    group: str
    position: str
    twitter_account: str
    facebook_account: str
    dbpedia_uri: str
    birth_department: str
    followers: int
    activity: float  # relative tweeting rate

    @property
    def uri(self) -> URI:
        return ttn(self.politician_id)


@dataclass
class PoliticalLandscape:
    """The generated population plus its RDF glue graph."""

    politicians: list[Politician]
    parties: list[Party]
    graph: Graph
    schema: RDFSchema

    def by_group(self) -> dict[str, list[Politician]]:
        """Politicians grouped by political current."""
        grouped: dict[str, list[Politician]] = {}
        for politician in self.politicians:
            grouped.setdefault(politician.group, []).append(politician)
        return grouped

    def head_of_state(self) -> Politician:
        """The (single) politician holding the ``headOfState`` position."""
        for politician in self.politicians:
            if politician.position == "headOfState":
                return politician
        raise DatasetError("the generated landscape has no head of state")

    def party(self, party_id: str) -> Party:
        """Return a party by id."""
        for party in self.parties:
            if party.party_id == party_id:
                return party
        raise DatasetError(f"unknown party {party_id!r}")


def generate_parties() -> list[Party]:
    """Generate one party object per entry of :data:`PARTIES_BY_GROUP`."""
    parties = []
    counter = 1
    for group in POLITICAL_GROUPS:
        for name in PARTIES_BY_GROUP[group]:
            parties.append(Party(
                party_id=f"PARTY{counter:03d}",
                name=name,
                group=group,
                european_group=EUROPEAN_GROUPS[group],
            ))
            counter += 1
    return parties


def generate_politicians(count: int = 60, seed: int = 42,
                         parties: list[Party] | None = None) -> list[Politician]:
    """Generate ``count`` deterministic politicians."""
    if count <= 0:
        raise DatasetError("politician count must be positive")
    rng = random.Random(seed)
    parties = parties if parties is not None else generate_parties()
    politicians: list[Politician] = []
    used_names: set[str] = set()
    for index in range(count):
        first = FIRST_NAMES[rng.randrange(len(FIRST_NAMES))]
        last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
        name = f"{first} {last}"
        suffix = 2
        while name in used_names:
            name = f"{first} {last} {suffix}"
            suffix += 1
        used_names.add(name)
        party = parties[rng.randrange(len(parties))]
        position = "headOfState" if index == 0 else POSITIONS[rng.randrange(1, len(POSITIONS))]
        handle = (first[0] + last).lower().replace(" ", "") + (str(index) if index else "")
        department = DEPARTMENTS[rng.randrange(len(DEPARTMENTS))][0]
        politicians.append(Politician(
            politician_id=f"POL{index + 1:05d}",
            name=name,
            gender=rng.choice(("female", "male")),
            party_id=party.party_id,
            group=party.group,
            position=position,
            twitter_account=handle,
            facebook_account=f"fb.{handle}",
            dbpedia_uri=f"http://dbpedia.org/resource/{first}_{last}_{index}",
            birth_department=department,
            followers=int(rng.lognormvariate(8, 1.2)),
            activity=0.3 + rng.random() * 1.7,
        ))
    return politicians


def build_schema() -> RDFSchema:
    """The RDFS schema of the glue graph (classes, properties, domains/ranges)."""
    schema = RDFSchema()
    schema.add_subclass(ttn("politician"), ttn("person"))
    schema.add_subclass(ttn("party"), ttn("organization"))
    schema.add_subclass(ttn("current"), ttn("concept"))
    schema.add_subproperty(ttn("memberOf"), ttn("affiliatedWith"))
    schema.add_subproperty(ttn("partOfCurrent"), ttn("affiliatedWith"))
    schema.add_domain(ttn("memberOf"), ttn("politician"))
    schema.add_range(ttn("memberOf"), ttn("party"))
    schema.add_domain(ttn("partOfCurrent"), ttn("party"))
    schema.add_range(ttn("partOfCurrent"), ttn("current"))
    schema.add_domain(ttn("twitterAccount"), ttn("politician"))
    schema.add_domain(ttn("position"), ttn("politician"))
    return schema


def build_glue_graph(politicians: list[Politician], parties: list[Party],
                     include_schema: bool = True) -> tuple[Graph, RDFSchema]:
    """Build the custom application RDF graph from the generated population."""
    graph = Graph(name="glue")
    schema = build_schema()
    if include_schema:
        graph.add_all(schema.triples())

    foaf_name = URI(FOAF_NS + "name")
    for group in POLITICAL_GROUPS:
        group_uri = ttn(f"current_{group.replace('-', '_')}")
        graph.add(Triple(group_uri, RDF_TYPE, ttn("current")))
        graph.add(Triple(group_uri, ttn("label"), literal(group)))

    for party in parties:
        graph.add(Triple(party.uri, RDF_TYPE, ttn("party")))
        graph.add(Triple(party.uri, foaf_name, literal(party.name)))
        graph.add(Triple(party.uri, ttn("partOfCurrent"),
                         ttn(f"current_{party.group.replace('-', '_')}")))
        graph.add(Triple(party.uri, ttn("currentLabel"), literal(party.group)))
        graph.add(Triple(party.uri, ttn("europeanGroup"), literal(party.european_group)))

    for politician in politicians:
        subject = politician.uri
        graph.add(Triple(subject, RDF_TYPE, ttn("politician")))
        graph.add(Triple(subject, foaf_name, literal(politician.name)))
        graph.add(Triple(subject, ttn("gender"), literal(politician.gender)))
        graph.add(Triple(subject, ttn("position"), ttn(politician.position)))
        graph.add(Triple(subject, ttn("memberOf"), ttn(politician.party_id)))
        graph.add(Triple(subject, ttn("politicalGroup"), literal(politician.group)))
        graph.add(Triple(subject, ttn("twitterAccount"), literal(politician.twitter_account)))
        graph.add(Triple(subject, ttn("facebookAccount"), literal(politician.facebook_account)))
        graph.add(Triple(subject, ttn("dbpediaURI"), uri(politician.dbpedia_uri)))
        graph.add(Triple(subject, ttn("birthDepartment"), literal(politician.birth_department)))
    return graph, schema


def generate_landscape(count: int = 60, seed: int = 42) -> PoliticalLandscape:
    """Generate the full political landscape (population + glue graph)."""
    parties = generate_parties()
    politicians = generate_politicians(count=count, seed=seed, parties=parties)
    graph, schema = build_glue_graph(politicians, parties)
    return PoliticalLandscape(politicians=politicians, parties=parties,
                              graph=graph, schema=schema)
