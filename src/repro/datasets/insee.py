"""Synthetic INSEE-like and Ministry-of-Interior-like relational sources.

The paper's mediator ships SQL sub-queries to "relational curated
databases, such as those provided by INSEE ... or the Ministry of
Interior, which compiles detailed results of national and regional
elections", and mentions the INSEE table "Production and value-added of
the agriculture in 2015".  These generators build deterministic databases
of that shape, keyed by the department codes that also appear in the
IGN-like RDF source and in the glue graph (the repeated values the
integration exploits).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.politicians import Politician
from repro.datasets.vocabulary import AGRICULTURAL_PRODUCTS, DEPARTMENTS, POLITICAL_GROUPS
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType


def build_insee_database(seed: int = 5, years: Sequence[int] = (2014, 2015)) -> Database:
    """Build the INSEE-like database (departments, population, unemployment, agriculture)."""
    rng = random.Random(seed)
    database = Database(name="insee")

    departments = TableSchema(
        name="departments",
        columns=[
            Column("code", DataType.TEXT, nullable=False),
            Column("name", DataType.TEXT, nullable=False),
            Column("region", DataType.TEXT, nullable=False),
            Column("population", DataType.INTEGER),
        ],
        primary_key="code",
    )
    table = database.create_table(departments)
    for code, name, region in DEPARTMENTS:
        table.insert({"code": code, "name": name, "region": region,
                      "population": 250_000 + rng.randrange(2_000_000)})

    unemployment = TableSchema(
        name="unemployment",
        columns=[
            Column("dept_code", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, nullable=False),
            Column("quarter", DataType.INTEGER, nullable=False),
            Column("rate", DataType.FLOAT, nullable=False),
        ],
        foreign_keys=[ForeignKey("dept_code", "departments", "code")],
    )
    table = database.create_table(unemployment)
    for code, _, _ in DEPARTMENTS:
        base_rate = 7.0 + rng.random() * 6.0
        for year in years:
            for quarter in range(1, 5):
                drift = (year - years[0]) * 0.3 + (quarter - 1) * 0.05
                table.insert({"dept_code": code, "year": year, "quarter": quarter,
                              "rate": round(base_rate + drift + rng.uniform(-0.4, 0.4), 2)})

    agriculture = TableSchema(
        name="agriculture_production",
        columns=[
            Column("region", DataType.TEXT, nullable=False),
            Column("product", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, nullable=False),
            Column("production_millions_eur", DataType.FLOAT, nullable=False),
            Column("value_added_millions_eur", DataType.FLOAT, nullable=False),
        ],
    )
    table = database.create_table(agriculture)
    regions = sorted({region for _, _, region in DEPARTMENTS})
    for region in regions:
        for product in AGRICULTURAL_PRODUCTS:
            for year in years:
                production = round(rng.uniform(50, 900), 1)
                table.insert({
                    "region": region, "product": product, "year": year,
                    "production_millions_eur": production,
                    "value_added_millions_eur": round(production * rng.uniform(0.25, 0.5), 1),
                })

    # A small registry of thematic open-data endpoints: the fact-checking
    # scenario discovers the source for a topic from this table at run time
    # (dynamic source discovery, paper §1 "the address of a relational
    # database is found in an INSEE table").
    datasets = TableSchema(
        name="open_datasets",
        columns=[
            Column("topic", DataType.TEXT, nullable=False),
            Column("title", DataType.TEXT, nullable=False),
            Column("source_uri", DataType.TEXT, nullable=False),
            Column("table_name", DataType.TEXT, nullable=False),
        ],
        primary_key="topic",
    )
    table = database.create_table(datasets)
    table.insert({"topic": "chomage", "title": "Taux de chomage localises",
                  "source_uri": "sql://insee", "table_name": "unemployment"})
    table.insert({"topic": "agriculture", "title": "Production agricole 2015",
                  "source_uri": "sql://insee", "table_name": "agriculture_production"})
    table.insert({"topic": "elections", "title": "Resultats electoraux",
                  "source_uri": "sql://elections", "table_name": "results"})
    return database


def build_elections_database(politicians: Sequence[Politician], seed: int = 9,
                             year: int = 2015) -> Database:
    """Build the Ministry-of-Interior-like database of regional election results."""
    rng = random.Random(seed)
    database = Database(name="elections")

    results = TableSchema(
        name="results",
        columns=[
            Column("dept_code", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, nullable=False),
            Column("round", DataType.INTEGER, nullable=False),
            Column("political_group", DataType.TEXT, nullable=False),
            Column("votes", DataType.INTEGER, nullable=False),
            Column("share", DataType.FLOAT, nullable=False),
        ],
    )
    table = database.create_table(results)
    for code, _, _ in DEPARTMENTS:
        for round_number in (1, 2):
            weights = [rng.random() + 0.2 for _ in POLITICAL_GROUPS]
            total_votes = 100_000 + rng.randrange(400_000)
            weight_sum = sum(weights)
            for group, weight in zip(POLITICAL_GROUPS, weights):
                votes = int(total_votes * weight / weight_sum)
                table.insert({"dept_code": code, "year": year, "round": round_number,
                              "political_group": group, "votes": votes,
                              "share": round(100.0 * weight / weight_sum, 2)})

    candidates = TableSchema(
        name="candidates",
        columns=[
            Column("candidate_name", DataType.TEXT, nullable=False),
            Column("dept_code", DataType.TEXT, nullable=False),
            Column("political_group", DataType.TEXT, nullable=False),
            Column("year", DataType.INTEGER, nullable=False),
            Column("elected", DataType.BOOLEAN, nullable=False),
        ],
        foreign_keys=[ForeignKey("dept_code", "results", "dept_code")],
    )
    table = database.create_table(candidates)
    for politician in politicians:
        table.insert({
            "candidate_name": politician.name,
            "dept_code": politician.birth_department,
            "political_group": politician.group,
            "year": year,
            "elected": rng.random() < 0.55,
        })
    return database
