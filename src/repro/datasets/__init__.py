"""Deterministic synthetic datasets standing in for the paper's corpus.

The Le Monde / Les Décodeurs collection (1.6M tweets, 10K Facebook posts,
curated political RDF, INSEE and election databases) is private; these
generators produce a scaled-down deterministic instance with the same
join structure and the same topical/temporal behaviour, which is what the
demonstration scenarios exercise.
"""

from repro.datasets.insee import build_elections_database, build_insee_database
from repro.datasets.loader import (
    DBPEDIA_URI,
    DemoConfig,
    DemoInstance,
    ELECTIONS_URI,
    FACEBOOK_URI,
    IGN_URI,
    INSEE_URI,
    TWEETS_JSON_URI,
    TWEETS_URI,
    build_demo_instance,
    fact_checking_query,
    party_vocabulary_query,
    qsia_json_query,
    qsia_query,
    register_demo_templates,
)
from repro.datasets.politicians import (
    Party,
    PoliticalLandscape,
    Politician,
    build_glue_graph,
    build_schema,
    generate_landscape,
    generate_parties,
    generate_politicians,
)
from repro.datasets.rdf_sources import build_dbpedia_graph, build_ign_graph
from repro.datasets.tweets import (
    Tweet,
    TweetGeneratorConfig,
    figure2_example_tweet,
    generate_facebook_posts,
    generate_tweet_objects,
    generate_tweets,
)
from repro.datasets.vocabulary import (
    AGRICULTURE,
    DEPARTMENTS,
    PARTIES_BY_GROUP,
    POLITICAL_GROUPS,
    STATE_OF_EMERGENCY,
    TOPICS,
    Topic,
    TopicPhase,
    UNEMPLOYMENT,
)

__all__ = [
    "build_elections_database",
    "build_insee_database",
    "DBPEDIA_URI",
    "DemoConfig",
    "DemoInstance",
    "ELECTIONS_URI",
    "FACEBOOK_URI",
    "IGN_URI",
    "INSEE_URI",
    "TWEETS_JSON_URI",
    "TWEETS_URI",
    "build_demo_instance",
    "fact_checking_query",
    "party_vocabulary_query",
    "qsia_json_query",
    "qsia_query",
    "register_demo_templates",
    "Party",
    "PoliticalLandscape",
    "Politician",
    "build_glue_graph",
    "build_schema",
    "generate_landscape",
    "generate_parties",
    "generate_politicians",
    "build_dbpedia_graph",
    "build_ign_graph",
    "Tweet",
    "TweetGeneratorConfig",
    "figure2_example_tweet",
    "generate_facebook_posts",
    "generate_tweet_objects",
    "generate_tweets",
    "AGRICULTURE",
    "DEPARTMENTS",
    "PARTIES_BY_GROUP",
    "POLITICAL_GROUPS",
    "STATE_OF_EMERGENCY",
    "TOPICS",
    "Topic",
    "TopicPhase",
    "UNEMPLOYMENT",
]
