"""Assembly of the full demonstration mixed instance.

:func:`build_demo_instance` builds the synthetic counterpart of the
paper's demonstration dataset (§3): a glue RDF graph about French
politicians, two Solr-like stores (tweets and Facebook posts), a native
JSON document store (the same tweets in Figure 2 shape, queried with tree
patterns), the INSEE-like and elections relational databases and two
external RDF sources (DBPedia-like and IGN-like), all registered in one
:class:`~repro.core.instance.MixedInstance` together with the atom
templates used by the textual CMQ syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.instance import MixedInstance
from repro.datasets.insee import build_elections_database, build_insee_database
from repro.datasets.politicians import PoliticalLandscape, generate_landscape
from repro.datasets.rdf_sources import build_dbpedia_graph, build_ign_graph
from repro.datasets.tweets import (
    Tweet,
    TweetGeneratorConfig,
    figure2_example_tweet,
    generate_facebook_posts,
    generate_tweet_objects,
)
from repro.datasets.vocabulary import AGRICULTURE, STATE_OF_EMERGENCY, TOPICS, Topic
from repro.fulltext.store import facebook_store, tweet_store
from repro.json.store import JSONDocumentStore
from repro.relational.database import Database

#: Canonical source URIs of the demonstration instance.
TWEETS_URI = "solr://tweets"
TWEETS_JSON_URI = "json://tweets"
FACEBOOK_URI = "solr://facebook"
INSEE_URI = "sql://insee"
ELECTIONS_URI = "sql://elections"
DBPEDIA_URI = "rdf://dbpedia"
IGN_URI = "rdf://ign"


@dataclass
class DemoInstance:
    """The assembled demonstration instance plus handles to its pieces."""

    instance: MixedInstance
    landscape: PoliticalLandscape
    tweets: list[dict]
    facebook_posts: list[dict]
    insee: Database
    elections: Database
    topic: Topic

    @property
    def politicians(self):
        return self.landscape.politicians

    def head_of_state(self):
        """The politician holding the ``headOfState`` position."""
        return self.landscape.head_of_state()


@dataclass
class DemoConfig:
    """Size/content knobs of the demonstration instance."""

    politicians: int = 40
    weeks: int = 4
    tweets_per_politician_per_week: float = 3.0
    topic: Topic = field(default_factory=lambda: STATE_OF_EMERGENCY)
    extra_topics: Sequence[str] = ("agriculture", "unemployment")
    facebook_posts_per_politician: int = 2
    include_figure2_tweet: bool = True
    include_claim_tweet: bool = True
    seed: int = 42


def build_demo_instance(config: DemoConfig | None = None) -> DemoInstance:
    """Build and register every source of the demonstration mixed instance."""
    config = config or DemoConfig()
    landscape = generate_landscape(count=config.politicians, seed=config.seed)

    # -- full-text sources -------------------------------------------------
    tweet_objects = generate_tweet_objects(
        landscape.politicians,
        TweetGeneratorConfig(topic=config.topic, weeks=config.weeks,
                             tweets_per_politician_per_week=config.tweets_per_politician_per_week,
                             seed=config.seed + 1),
    )
    for extra in config.extra_topics:
        topic = TOPICS[extra] if isinstance(extra, str) else extra
        tweet_objects.extend(generate_tweet_objects(
            landscape.politicians,
            TweetGeneratorConfig(topic=topic, weeks=min(2, config.weeks),
                                 tweets_per_politician_per_week=max(
                                     1.0, config.tweets_per_politician_per_week / 2),
                                 seed=config.seed + 13),
        ))
    if config.include_figure2_tweet:
        figure2 = figure2_example_tweet()
        head = landscape.head_of_state()
        # Attribute the Figure 2 tweet to the synthetic head of state so the
        # qSIA scenario joins it through the glue graph.
        figure2["user"]["screen_name"] = head.twitter_account
        figure2["user"]["name"] = head.name
        figure2["group"] = head.group
        tweet_objects.append(Tweet.from_record(figure2))
    if config.include_claim_tweet:
        # A guaranteed presidential claim about unemployment so the
        # fact-checking scenario (E6) always has something to check.
        head = landscape.head_of_state()
        tweet_objects.append(Tweet(
            tweet_id=464_244_999_000_000_001,
            created_at="2015-12-03T09:15:00",
            week="2015-W49",
            text=("Le chomage baisse dans tous les departements depuis trois "
                  "trimestres, les chiffres le prouvent #chomage"),
            user_id=int(head.politician_id[3:]),
            user_name=head.name,
            screen_name=head.twitter_account,
            user_description=f"{head.position} - {head.group}",
            followers_count=head.followers,
            retweet_count=1250,
            favorite_count=2100,
            hashtags=("chomage",),
            group=head.group,
            party_id=head.party_id,
        ))
    tweets = [tweet.record() for tweet in tweet_objects]
    store = tweet_store()
    store.add_all(tweets)

    # -- JSON source -------------------------------------------------------
    # The same tweets as *native* JSON documents (the exact Figure 2 shape
    # produced by Tweet.to_json), queried with tree patterns rather than
    # through the flattened full-text index.
    json_store = JSONDocumentStore(name="tweets_json", id_field="id", text_path="text")
    json_store.add_all(tweet.to_json() for tweet in tweet_objects)

    posts = generate_facebook_posts(landscape.politicians, topic=config.topic,
                                    posts_per_politician=config.facebook_posts_per_politician,
                                    seed=config.seed + 2)
    fb_store = facebook_store()
    fb_store.add_all(posts)

    # -- relational sources ------------------------------------------------
    insee = build_insee_database(seed=config.seed + 3)
    elections = build_elections_database(landscape.politicians, seed=config.seed + 4)

    # -- RDF sources ---------------------------------------------------------
    dbpedia = build_dbpedia_graph(landscape.politicians, seed=config.seed + 5)
    ign_graph = build_ign_graph(seed=config.seed + 6)

    # -- assemble the mixed instance -----------------------------------------
    instance = MixedInstance(graph=landscape.graph, name="lemonde-demo",
                             schema=landscape.schema)
    instance.register_fulltext(TWEETS_URI, store,
                               description="tweets of French politicians (Solr-like)")
    instance.register_fulltext(FACEBOOK_URI, fb_store,
                               description="Facebook posts of French politicians (Solr-like)")
    instance.register_json(TWEETS_JSON_URI, json_store,
                           description="tweets as native JSON documents (tree patterns)")
    instance.register_relational(INSEE_URI, insee,
                                 description="INSEE statistics (SQL)")
    instance.register_relational(ELECTIONS_URI, elections,
                                 description="Ministry of Interior election results (SQL)")
    instance.register_rdf(DBPEDIA_URI, dbpedia, description="DBPedia extract (RDF)")
    instance.register_rdf(IGN_URI, ign_graph, description="IGN territory data (RDF)")

    register_demo_templates(instance)
    return DemoInstance(instance=instance, landscape=landscape, tweets=tweets,
                        facebook_posts=posts, insee=insee, elections=elections,
                        topic=config.topic)


def register_demo_templates(instance: MixedInstance) -> None:
    """Register the atom templates used by the textual CMQ examples."""
    templates = instance.templates
    templates.register_graph_bgp(
        "qG",
        "SELECT ?id WHERE { ?x ttn:position ttn:headOfState . ?x ttn:twitterAccount ?id }",
        parameters=("id",),
    )
    templates.register_graph_bgp(
        "politicianAccount",
        "SELECT ?name ?group ?id WHERE { ?x foaf:name ?name . "
        "?x ttn:politicalGroup ?group . ?x ttn:twitterAccount ?id }",
        parameters=("name", "group", "id"),
    )
    templates.register_fulltext(
        "tweetContains",
        query="entities.hashtags:{tag}",
        fields={"t": "text", "id": "user.screen_name"},
        parameters=("t", "id", "tag"),
        default_source=TWEETS_URI,
    )
    templates.register_fulltext(
        "tweetMentions",
        query="text:{word}",
        fields={"t": "text", "id": "user.screen_name", "rt": "retweet_count"},
        parameters=("t", "id", "rt", "word"),
        default_source=TWEETS_URI,
    )
    templates.register_sql(
        "unemploymentRate",
        sql="SELECT dept_code AS dept, year AS year, rate AS rate FROM unemployment",
        parameters=("dept", "year", "rate"),
        default_source=INSEE_URI,
    )
    templates.register_sql(
        "departmentInfo",
        sql="SELECT code AS dept, name AS dept_name, population AS population FROM departments",
        parameters=("dept", "dept_name", "population"),
        default_source=INSEE_URI,
    )
    templates.register_json(
        "tweetJson",
        pattern="{ text: ?t, user.screen_name: ?id, entities.hashtags: {tag} }",
        parameters=("t", "id", "tag"),
        default_source=TWEETS_JSON_URI,
    )
    templates.register_json(
        "tweetEngagement",
        pattern="{ text: ?t, user.screen_name: ?id, retweet_count: ?rt }",
        parameters=("t", "id", "rt"),
        default_source=TWEETS_JSON_URI,
    )
    templates.register_rdf(
        "departmentGeo",
        "SELECT ?dept ?dept_uri WHERE { ?dept_uri "
        "<http://data.ign.fr/def/geofla#codeINSEE> ?dept }",
        parameters=("dept", "dept_uri"),
        default_source=IGN_URI,
    )


# ---------------------------------------------------------------------------
# Canonical CMQs of the demonstration scenarios
# ---------------------------------------------------------------------------

def qsia_query(demo: DemoInstance, hashtag: str = "SIA2016"):
    """The paper's qSIA query: head-of-state tweets carrying ``hashtag``."""
    return (demo.instance.builder("qSIA", head=["t", "id"])
            .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id }")
            .fulltext("tweetContains", source=TWEETS_URI,
                      query=f"entities.hashtags:{hashtag.lower()}",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())


def qsia_json_query(demo: DemoInstance, hashtag: str = "SIA2016"):
    """qSIA over the native JSON store, joined with INSEE statistics.

    A three-model mix (RDF glue + JSON tree pattern + SQL): head-of-state
    tweets carrying ``hashtag``, fetched as native JSON documents, joined
    with the unemployment statistics of the author's birth department.
    The JSON atom runs as a bind join (it shares ``id`` with the glue
    BGP); with ``use_bind_joins=False`` it materialises instead.
    """
    return (demo.instance.builder("qSIAJson", head=["t", "id", "dept", "rate"])
            .graph("SELECT ?id ?dept WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id . ?x ttn:birthDepartment ?dept }")
            .json("tweetJson", source=TWEETS_JSON_URI,
                  pattern='{ text: ?t, user.screen_name: ?id, '
                          f'entities.hashtags: "{hashtag.lower()}" }}')
            .sql("unemployment", source=INSEE_URI,
                 sql=("SELECT dept_code AS dept, year AS year, rate AS rate "
                      "FROM unemployment WHERE dept_code = {dept}"))
            .build())


def party_vocabulary_query(demo: DemoInstance, word: str):
    """Scenario 2: tweets containing ``word`` with the author's political group."""
    return (demo.instance.builder("partyVocabulary", head=["group", "t", "rt", "id", "week"])
            .graph("SELECT ?group ?id WHERE { ?x ttn:politicalGroup ?group . "
                   "?x ttn:twitterAccount ?id }")
            .fulltext("tweetMentions", source=TWEETS_URI,
                      query=f"text:{word}",
                      fields={"t": "text", "id": "user.screen_name",
                              "rt": "retweet_count", "week": "week"})
            .build())


def fact_checking_query(demo: DemoInstance, topic_keyword: str = "chomage"):
    """Scenario 1: factual (INSEE) sources related to presidential claims.

    Joins: head-of-state tweets mentioning the topic (full-text source) →
    the open-data registry giving, for the topic, the source URI and table
    holding the relevant statistics (relational source, *dynamic source
    discovery*) → the statistics themselves, fetched from the discovered
    source, restricted to the president's birth department through the glue
    graph.
    """
    return (demo.instance.builder("factCheck", head=["t", "dept", "year", "rate", "src"])
            .graph("SELECT ?id ?dept WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id . ?x ttn:birthDepartment ?dept }")
            .fulltext("claims", source=TWEETS_URI,
                      query=f"text:{topic_keyword}",
                      fields={"t": "text", "id": "user.screen_name"})
            .sql("datasetRegistry", source=INSEE_URI,
                 sql=("SELECT source_uri AS src, table_name AS tbl FROM open_datasets "
                      f"WHERE topic = '{topic_keyword}'"))
            .sql("statistics", source_variable="src",
                 sql=("SELECT dept_code AS dept, year AS year, rate AS rate "
                      "FROM unemployment WHERE dept_code = {dept}"))
            .build())
