"""Synthetic tweet and Facebook-post generation.

Tweets follow the JSON shape of the paper's Figure 2 (``created_at``,
``id``, ``text``, nested ``user`` object, ``retweet_count``,
``favorite_count``, ``entities.hashtags``).  The generator is
deterministic (seeded) and topic-aware: each tweet mixes its topic's
shared vocabulary, the vocabulary of the week's phase, the author group's
slant and neutral filler, so per-group weekly PMI rankings reproduce the
discourse drift of Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, datetime, timedelta
from typing import Iterable, Sequence

from repro.datasets.politicians import Politician
from repro.datasets.vocabulary import FILLER_TERMS, STATE_OF_EMERGENCY, Topic

#: Default start date of the synthetic collection (the paper's corpus starts
#: in June 2015; the state-of-emergency weeks start mid-November 2015).
DEFAULT_START = date(2015, 11, 16)


@dataclass(frozen=True)
class Tweet:
    """One synthetic tweet, one :meth:`to_json` call away from Figure 2.

    ``week``, ``group`` and ``party_id`` are generator-side metadata used
    by the flattened full-text/analytics path; they are *not* part of the
    tweet's JSON shape and are therefore excluded from :meth:`to_json`.
    """

    tweet_id: int
    created_at: str
    text: str
    user_id: int
    user_name: str
    screen_name: str
    user_description: str
    followers_count: int
    retweet_count: int
    favorite_count: int
    hashtags: tuple[str, ...] = ()
    urls: tuple[str, ...] = ()
    week: str = ""
    group: str = ""
    party_id: str = ""

    def to_json(self) -> dict:
        """The tweet as a native JSON document, exactly Figure 2's shape."""
        return {
            "created_at": self.created_at,
            "id": self.tweet_id,
            "text": self.text,
            "user": {
                "id": self.user_id,
                "name": self.user_name,
                "screen_name": self.screen_name,
                "description": self.user_description,
                "followers_count": self.followers_count,
            },
            "retweet_count": self.retweet_count,
            "favorite_count": self.favorite_count,
            "entities": {"hashtags": list(self.hashtags), "urls": list(self.urls)},
        }

    def record(self) -> dict:
        """Figure 2 JSON plus the flattened-path metadata fields."""
        out = self.to_json()
        if self.week:
            out["week"] = self.week
        if self.group:
            out["group"] = self.group
        if self.party_id:
            out["party_id"] = self.party_id
        return out

    @classmethod
    def from_record(cls, record: dict) -> "Tweet":
        """Rebuild a :class:`Tweet` from a Figure-2-shaped document."""
        user = record.get("user", {})
        entities = record.get("entities", {})
        return cls(
            tweet_id=record["id"],
            created_at=record.get("created_at", ""),
            text=record.get("text", ""),
            user_id=user.get("id", 0),
            user_name=user.get("name", ""),
            screen_name=user.get("screen_name", ""),
            user_description=user.get("description", ""),
            followers_count=user.get("followers_count", 0),
            retweet_count=record.get("retweet_count", 0),
            favorite_count=record.get("favorite_count", 0),
            hashtags=tuple(entities.get("hashtags", ())),
            urls=tuple(entities.get("urls", ())),
            week=record.get("week", ""),
            group=record.get("group", ""),
            party_id=record.get("party_id", ""),
        )


@dataclass
class TweetGeneratorConfig:
    """Knobs of the synthetic tweet generator."""

    topic: Topic = field(default_factory=lambda: STATE_OF_EMERGENCY)
    weeks: int = 4
    tweets_per_politician_per_week: float = 3.0
    start: date = DEFAULT_START
    hashtag_probability: float = 0.75
    off_topic_probability: float = 0.2
    words_per_tweet: int = 14
    seed: int = 7


def generate_tweet_objects(politicians: Sequence[Politician],
                           config: TweetGeneratorConfig | None = None) -> list[Tweet]:
    """Generate :class:`Tweet` objects for ``politicians``."""
    config = config or TweetGeneratorConfig()
    rng = random.Random(config.seed)
    tweets: list[Tweet] = []
    tweet_id = 464_244_000_000_000_000
    for week_index in range(config.weeks):
        phase = config.topic.phases[min(week_index, len(config.topic.phases) - 1)]
        week_start = config.start + timedelta(weeks=week_index)
        for politician in politicians:
            expected = config.tweets_per_politician_per_week * politician.activity
            count = _poisson(rng, expected)
            for _ in range(count):
                tweet_id += rng.randrange(1, 5000)
                moment = datetime.combine(week_start, datetime.min.time()) + timedelta(
                    days=rng.randrange(7), hours=rng.randrange(7, 23), minutes=rng.randrange(60)
                )
                off_topic = rng.random() < config.off_topic_probability
                text, hashtags = _compose_text(rng, config, politician.group, phase.label,
                                               week_index, off_topic)
                tweets.append(Tweet(
                    tweet_id=tweet_id,
                    created_at=moment.strftime("%Y-%m-%dT%H:%M:%S"),
                    week=f"{week_start.isocalendar()[0]}-W{week_start.isocalendar()[1]:02d}",
                    text=text,
                    user_id=int(politician.politician_id[3:]),
                    user_name=politician.name,
                    screen_name=politician.twitter_account,
                    user_description=f"{politician.position} - {politician.group}",
                    followers_count=politician.followers,
                    retweet_count=_engagement(rng, politician.followers),
                    favorite_count=_engagement(rng, politician.followers, scale=0.6),
                    hashtags=tuple(hashtags),
                    group=politician.group,
                    party_id=politician.party_id,
                ))
    return tweets


def generate_tweets(politicians: Sequence[Politician],
                    config: TweetGeneratorConfig | None = None) -> list[dict]:
    """Generate Figure-2-shaped tweet documents for ``politicians``."""
    return [tweet.record() for tweet in generate_tweet_objects(politicians, config)]


def generate_facebook_posts(politicians: Sequence[Politician], topic: Topic | None = None,
                            posts_per_politician: int = 3, seed: int = 11,
                            start: date = DEFAULT_START) -> list[dict]:
    """Generate Facebook-post documents (longer texts, like/share/comment counts)."""
    topic = topic or STATE_OF_EMERGENCY
    rng = random.Random(seed)
    posts: list[dict] = []
    post_id = 900_000_000
    for politician in politicians:
        for index in range(posts_per_politician):
            post_id += rng.randrange(1, 900)
            phase = topic.phases[min(index, len(topic.phases) - 1)]
            sentences = []
            for _ in range(3):
                words = _pick_words(rng, topic, politician.group, phase.label, count=12)
                sentences.append(" ".join(words).capitalize() + ".")
            moment = datetime.combine(start, datetime.min.time()) + timedelta(
                weeks=index, days=rng.randrange(7), hours=rng.randrange(8, 22)
            )
            posts.append({
                "id": post_id,
                "author": politician.facebook_account,
                "page_id": f"page_{politician.politician_id.lower()}",
                "created_at": moment.strftime("%Y-%m-%dT%H:%M:%S"),
                "message": " ".join(sentences),
                "likes": _engagement(rng, politician.followers, scale=1.5),
                "shares": _engagement(rng, politician.followers, scale=0.4),
                "comments": _engagement(rng, politician.followers, scale=0.3),
                "group": politician.group,
            })
    return posts


def figure2_example_tweet() -> dict:
    """The tweet of the paper's Figure 2, as a document of our store schema."""
    return {
        "created_at": "2016-03-01T03:42:31",
        "id": 464244242167342513,
        "text": ("Je suis là aujourd'hui pour montrer qu'il y a une solidarité nationale. "
                 "En défendant l'agriculture ... #SIA2016"),
        "user": {
            "id": 483794260,
            "name": "François Hollande",
            "screen_name": "fhollande",
            "description": "Président de la République française",
            "followers_count": 1502835,
        },
        "retweet_count": 469,
        "favorite_count": 883,
        "entities": {"hashtags": ["SIA2016"], "urls": []},
    }


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------

def _compose_text(rng: random.Random, config: TweetGeneratorConfig, group: str,
                  phase_label: str, week_index: int, off_topic: bool) -> tuple[str, list[str]]:
    topic = config.topic
    if off_topic:
        words = [rng.choice(FILLER_TERMS) for _ in range(config.words_per_tweet)]
        return " ".join(words), []
    words = _pick_words(rng, topic, group, phase_label, count=config.words_per_tweet)
    hashtags = []
    if rng.random() < config.hashtag_probability:
        hashtags.append(topic.hashtag)
        words.append(f"#{topic.hashtag}")
    return " ".join(words), hashtags


def _pick_words(rng: random.Random, topic: Topic, group: str, phase_label: str,
                count: int) -> list[str]:
    phase = next((p for p in topic.phases if p.label == phase_label), topic.phases[0])
    group_slant = topic.group_terms.get(group, ())
    words: list[str] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.35 and phase.core_terms:
            words.append(rng.choice(phase.core_terms))
        elif roll < 0.6 and group_slant:
            words.append(rng.choice(group_slant))
        elif roll < 0.85:
            words.append(rng.choice(topic.shared_terms))
        else:
            words.append(rng.choice(FILLER_TERMS))
    return words


def _engagement(rng: random.Random, followers: int, scale: float = 1.0) -> int:
    base = max(1.0, followers / 300.0)
    return int(rng.expovariate(1.0 / (base * scale + 1.0)))


def _poisson(rng: random.Random, expected: float) -> int:
    """Small-λ Poisson sampling (Knuth's algorithm)."""
    if expected <= 0:
        return 0
    limit = pow(2.718281828459045, -expected)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
