"""Topic vocabularies and political taxonomy for the synthetic corpus.

The paper's demonstration dataset (tweets of ~4,500 French politicians,
Facebook posts, a glue graph of parties and currents) is private; the
generators in :mod:`repro.datasets` replace it with a deterministic
synthetic corpus.  This module holds the *content* driving that corpus:

* the political groups (currents) used for Figure 3's colour coding and
  their synthetic parties;
* the state-of-emergency topic with its four weekly phases — factual,
  institutional, objections, vigilance — so the weekly PMI tag clouds
  reproduce the discourse drift the paper describes;
* the #SIA2016 agriculture topic (scenario qSIA) and an unemployment
  topic (fact-checking scenario), plus neutral filler vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Political groups (currents), matching the colour legend of Figure 3.
POLITICAL_GROUPS = ("extreme-left", "left", "ecologists", "center", "right", "extreme-right")

#: Synthetic parties per group.  Names are fictitious but French-flavoured.
PARTIES_BY_GROUP = {
    "extreme-left": ("Parti Ouvrier Uni", "Gauche Insoumise"),
    "left": ("Parti Social Republicain", "Mouvement Progressiste"),
    "ecologists": ("Europe Verte", "Alliance Ecologique"),
    "center": ("Union du Centre",),
    "right": ("Rassemblement Republicain", "Droite Populaire"),
    "extreme-right": ("Front National Uni",),
}

#: European Parliament group affiliation per current (glue-graph content the
#: paper mentions journalists curate by hand).
EUROPEAN_GROUPS = {
    "extreme-left": "GUE/NGL",
    "left": "S&D",
    "ecologists": "Greens/EFA",
    "center": "ALDE",
    "right": "EPP",
    "extreme-right": "ENF",
}


@dataclass(frozen=True)
class TopicPhase:
    """One temporal phase of a topic: a week index and its core vocabulary."""

    week: int
    label: str
    core_terms: tuple[str, ...]


@dataclass(frozen=True)
class Topic:
    """A discussion topic: hashtag, shared vocabulary, phases and group slants."""

    name: str
    hashtag: str
    shared_terms: tuple[str, ...]
    phases: tuple[TopicPhase, ...]
    group_terms: dict[str, tuple[str, ...]]


#: The state-of-emergency topic (Figure 3): four weekly phases.
STATE_OF_EMERGENCY = Topic(
    name="state_of_emergency",
    hashtag="EtatDurgence",
    shared_terms=(
        "urgence", "securite", "attentats", "france", "nation", "mesures",
        "police", "terrorisme",
    ),
    phases=(
        TopicPhase(week=0, label="factual", core_terms=(
            "attaques", "victimes", "hommage", "deuil", "solidarite", "soutien",
            "emotion", "paris",
        )),
        TopicPhase(week=1, label="institutional", core_terms=(
            "parlement", "vote", "prolongation", "constitution", "assemblee",
            "loi", "gouvernement", "etat",
        )),
        TopicPhase(week=2, label="objections", core_terms=(
            "abus", "exces", "risque", "perquisitions", "libertes", "derives",
            "controle", "assignations",
        )),
        TopicPhase(week=3, label="vigilance", core_terms=(
            "vigilance", "controle", "equilibre", "justice", "transparence",
            "garanties", "evaluation", "sortie",
        )),
    ),
    group_terms={
        "extreme-left": ("repression", "injustice", "mobilisation", "resistance"),
        "left": ("responsabilite", "unite", "protection", "republique"),
        "ecologists": ("libertes", "derives", "proportionnalite", "surveillance"),
        "center": ("equilibre", "dialogue", "pragmatisme", "efficacite"),
        "right": ("fermete", "autorite", "frontieres", "ordre"),
        "extreme-right": ("immigration", "frontieres", "laxisme", "expulsion"),
    },
)

#: The agriculture fair topic (#SIA2016) behind the qSIA scenario.
AGRICULTURE = Topic(
    name="agriculture",
    hashtag="SIA2016",
    shared_terms=(
        "agriculture", "agriculteurs", "salon", "elevage", "prix", "crise",
        "filiere", "terroir",
    ),
    phases=(
        TopicPhase(week=0, label="visit", core_terms=(
            "solidarite", "nationale", "soutien", "eleveurs", "visite", "rencontre",
        )),
        TopicPhase(week=1, label="prices", core_terms=(
            "prix", "remuneration", "grande", "distribution", "negociations", "revenu",
        )),
        TopicPhase(week=2, label="europe", core_terms=(
            "europe", "pac", "aides", "bruxelles", "quotas", "concurrence",
        )),
        TopicPhase(week=3, label="transition", core_terms=(
            "bio", "transition", "circuits", "courts", "environnement", "qualite",
        )),
    ),
    group_terms={
        "extreme-left": ("exploitation", "cooperatives", "speculation", "dumping"),
        "left": ("regulation", "revenu", "protection", "solidarite"),
        "ecologists": ("bio", "pesticides", "environnement", "circuits"),
        "center": ("innovation", "competitivite", "exportations", "modernisation"),
        "right": ("charges", "normes", "simplification", "entreprises"),
        "extreme-right": ("importations", "frontieres", "patriotisme", "etiquetage"),
    },
)

#: The unemployment topic behind the fact-checking scenario.
UNEMPLOYMENT = Topic(
    name="unemployment",
    hashtag="chomage",
    shared_terms=(
        "chomage", "emploi", "travail", "economie", "croissance", "entreprises",
        "formation", "jeunes",
    ),
    phases=(
        TopicPhase(week=0, label="figures", core_terms=(
            "chiffres", "baisse", "hausse", "statistiques", "insee", "courbe",
        )),
        TopicPhase(week=1, label="policy", core_terms=(
            "reforme", "plan", "mesures", "apprentissage", "embauche", "aides",
        )),
        TopicPhase(week=2, label="debate", core_terms=(
            "debat", "bilan", "promesses", "resultats", "verite", "factcheck",
        )),
        TopicPhase(week=3, label="regions", core_terms=(
            "territoires", "regions", "departements", "inegalites", "ruralite", "metropoles",
        )),
    ),
    group_terms={
        "extreme-left": ("precarite", "salaires", "services", "publics"),
        "left": ("formation", "securisation", "accompagnement", "dialogue"),
        "ecologists": ("transition", "verts", "reconversion", "durable"),
        "center": ("flexibilite", "apprentissage", "simplification", "mobilite"),
        "right": ("charges", "competitivite", "travail", "assistanat"),
        "extreme-right": ("priorite", "nationale", "frontieres", "delocalisations"),
    },
)

#: All predefined topics, by name.
TOPICS = {topic.name: topic for topic in (STATE_OF_EMERGENCY, AGRICULTURE, UNEMPLOYMENT)}

#: Neutral filler words mixed into every tweet.
FILLER_TERMS = (
    "aujourd'hui", "direct", "reunion", "deplacement", "interview", "merci",
    "rendez-vous", "debat", "soutien", "travail", "projet", "annonce",
    "conference", "presse", "territoire", "citoyens",
)

#: French first names / last names used to build politician identities.
FIRST_NAMES = (
    "Francois", "Marine", "Nicolas", "Anne", "Jean", "Claire", "Pierre",
    "Sophie", "Michel", "Julie", "Alain", "Camille", "Bruno", "Elise",
    "Laurent", "Nadia", "Olivier", "Manon", "Philippe", "Lea",
)

LAST_NAMES = (
    "Hollier", "Lepen", "Sarkon", "Duval", "Moreau", "Petit", "Lambert",
    "Rousseau", "Garnier", "Chevalier", "Fontaine", "Dupont", "Leroy",
    "Marchand", "Gauthier", "Perrin", "Renard", "Colin", "Bertrand", "Masson",
)

#: Department codes and names (a representative subset of the French ones),
#: reused as join keys across the IGN-like RDF source and the INSEE tables
#: ("common naming for machines", paper §1).
DEPARTMENTS = (
    ("01", "Ain", "Auvergne-Rhone-Alpes"),
    ("06", "Alpes-Maritimes", "Provence-Alpes-Cote d'Azur"),
    ("13", "Bouches-du-Rhone", "Provence-Alpes-Cote d'Azur"),
    ("29", "Finistere", "Bretagne"),
    ("31", "Haute-Garonne", "Occitanie"),
    ("33", "Gironde", "Nouvelle-Aquitaine"),
    ("34", "Herault", "Occitanie"),
    ("35", "Ille-et-Vilaine", "Bretagne"),
    ("38", "Isere", "Auvergne-Rhone-Alpes"),
    ("44", "Loire-Atlantique", "Pays de la Loire"),
    ("59", "Nord", "Hauts-de-France"),
    ("62", "Pas-de-Calais", "Hauts-de-France"),
    ("67", "Bas-Rhin", "Grand Est"),
    ("69", "Rhone", "Auvergne-Rhone-Alpes"),
    ("75", "Paris", "Ile-de-France"),
    ("76", "Seine-Maritime", "Normandie"),
    ("77", "Seine-et-Marne", "Ile-de-France"),
    ("92", "Hauts-de-Seine", "Ile-de-France"),
    ("93", "Seine-Saint-Denis", "Ile-de-France"),
    ("94", "Val-de-Marne", "Ile-de-France"),
)

#: Agricultural products for the INSEE "production of agriculture" table.
AGRICULTURAL_PRODUCTS = (
    "cereales", "vins", "lait", "bovins", "porcins", "volailles", "fruits",
    "legumes", "betteraves", "oleagineux",
)

#: Positions politicians may hold (the glue graph's ``position`` property).
POSITIONS = (
    "headOfState", "primeMinister", "minister", "deputy", "senator", "mayor",
    "regionalCouncillor", "partyLeader", "europeanDeputy",
)
