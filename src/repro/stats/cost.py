"""The mediator's cost model.

Every plan alternative is priced in abstract *cost units* combining

* a per-call **setup cost** (connection/parse/dispatch overhead of one
  sub-query call — full-text searches are the most expensive, glue-graph
  BGPs the cheapest),
* a per-row **transfer cost** (shipping one result row from the source
  to the mediator),
* a per-binding **push cost** for bind joins (serialising one binding
  into an IN-list / disjunctive query / parameter fill),

with discounts for the digest sieve (bindings proven matchless never
ship) and batched dispatch (one setup amortised over a whole batch).
The constants are calibrated per source *kind*, not per instance: they
only need to rank alternatives, not predict wall-clock time.

The same model also picks bind-join batch sizes: the size decreases
monotonically with the estimated per-binding cost, fixing the historical
discontinuity where an estimate of ``inf`` yielded a mid-size batch
while a merely large estimate yielded the minimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Bounds of the planner-chosen bind-join batch size.
MIN_BIND_BATCH = 16
MAX_BIND_BATCH = 1024


@dataclass(frozen=True)
class SourceCosts:
    """Calibrated constants for one source kind (cost units)."""

    #: Fixed cost of one sub-query call (dispatch, parse, plan).
    call_setup: float
    #: Cost of transferring one result row to the mediator.
    per_row: float
    #: Cost of shipping one binding into a dependent (bind-join) call.
    per_binding: float


#: Per-model defaults.  Full-text searches pay analysis + scoring per
#: call; JSON tree patterns pay candidate verification; SQL pays parse
#: and scan setup; BGPs over in-memory indexes are cheapest.
DEFAULT_SOURCE_COSTS: dict[str, SourceCosts] = {
    "rdf": SourceCosts(call_setup=1.0, per_row=0.02, per_binding=0.01),
    "relational": SourceCosts(call_setup=2.0, per_row=0.01, per_binding=0.008),
    "json": SourceCosts(call_setup=3.0, per_row=0.02, per_binding=0.012),
    # JSON stores backed by the XPath-accelerator encoding: candidate
    # verification is a structural range join (bisect probes over the
    # columnar arrays), not a tree walk — cheaper setup and per-binding
    # probes than the naive "json" kind (a source advertises this kind
    # through its ``cost_kind`` attribute).
    "json_accel": SourceCosts(call_setup=1.5, per_row=0.012, per_binding=0.01),
    "fulltext": SourceCosts(call_setup=5.0, per_row=0.03, per_binding=0.02),
    # Sources reached over the network (RemoteSource wrappers): one call
    # pays a full round trip, dwarfing any local dispatch overhead, while
    # marginal per-row / per-binding transfer stays cheap once the
    # connection is streaming.  The planner therefore prefers *fewer,
    # bigger* batches to remote sources (see :meth:`CostModel.batch_size`).
    "remote": SourceCosts(call_setup=40.0, per_row=0.05, per_binding=0.02),
}

#: Call-setup level above which a kind is priced as "network-far": batch
#: sizes decay more slowly so round trips are amortised over more
#: bindings.  Local kinds (setup 1–5) sit below it and are unaffected.
NETWORK_SETUP_THRESHOLD = 8.0

#: Used for wrapper models the table does not know (custom sources).
FALLBACK_SOURCE_COSTS = SourceCosts(call_setup=3.0, per_row=0.02, per_binding=0.012)


class CostModel:
    """Prices plan steps; shared by the enumerator and the batch sizer."""

    def __init__(self, source_costs: dict[str, SourceCosts] | None = None,
                 sieve_survival: float = 0.75,
                 batch_row_scale: float = 16.0,
                 mode_switch_margin: float = 0.8):
        self.source_costs = dict(DEFAULT_SOURCE_COSTS)
        if source_costs:
            self.source_costs.update(source_costs)
        #: Expected fraction of bindings surviving the digest sieve.
        self.sieve_survival = sieve_survival
        #: Rows-per-binding granularity of the batch-size decay.
        self.batch_row_scale = batch_row_scale
        #: Materialize replaces a bind join only when cheaper by this
        #: factor — bind joins additionally shrink downstream joins and
        #: enable sieve/cache probes, which the per-step price cannot see.
        self.mode_switch_margin = mode_switch_margin

    # ------------------------------------------------------------------
    def costs_for(self, model: str) -> SourceCosts:
        """The constants of one source kind (fallback for unknown kinds)."""
        return self.source_costs.get(model, FALLBACK_SOURCE_COSTS)

    def materialize_cost(self, models: Sequence[str], estimated_rows: float) -> float:
        """Cost of fetching a sub-query's whole result.

        ``models`` holds the kind of every dispatched source (several for
        dynamic atoms); ``estimated_rows`` is the total across them.
        """
        if not models:
            return float("inf")
        setup = sum(self.costs_for(m).call_setup for m in models)
        per_row = max(self.costs_for(m).per_row for m in models)
        return setup + per_row * max(0.0, estimated_rows)

    def bind_cost(self, models: Sequence[str], input_bindings: float,
                  rows_per_binding: float, batch_size: int,
                  batched: bool = True, sieved: bool = False) -> float:
        """Cost of a dependent join shipping ``input_bindings`` bindings.

        One batch is one call per target source; the sieve discount
        models bindings dropped before shipping (their rows never
        transfer either, because a sieved binding provably has none).
        """
        if not models:
            return float("inf")
        bindings = max(0.0, input_bindings)
        if sieved:
            bindings *= self.sieve_survival
        if math.isinf(bindings):
            return float("inf")
        per_batch = max(1, batch_size) if batched else 1
        calls = math.ceil(bindings / per_batch) if bindings > 0 else 1
        setup = sum(self.costs_for(m).call_setup for m in models)
        per_binding = max(self.costs_for(m).per_binding for m in models)
        per_row = max(self.costs_for(m).per_row for m in models)
        rows_out = bindings * max(0.0, rows_per_binding)
        return calls * setup + bindings * per_binding + rows_out * per_row

    # ------------------------------------------------------------------
    def batch_size(self, rows_per_binding: float,
                   models: Sequence[str] = ()) -> int:
        """Bind-join batch size, monotonically decreasing in cost.

        Selective steps (few rows per binding) batch maximally — every
        shipped binding is cheap to answer, so amortising the call setup
        dominates.  The size decays continuously as the per-binding
        transfer cost grows (results should start streaming early), down
        to :data:`MIN_BIND_BATCH` for very expensive or unbounded
        (``inf``) estimates — there is no discontinuity at any estimate.

        ``models`` carries the kinds of the step's target sources.  For
        network-far kinds (call setup above
        :data:`NETWORK_SETUP_THRESHOLD`, i.e. a round trip per call) the
        decay slows proportionally: when one call costs a 25 ms RTT, it
        is worth shipping a large batch even for a moderately expensive
        sub-query.  Local kinds keep the historical curve exactly.
        """
        if math.isnan(rows_per_binding) or math.isinf(rows_per_binding):
            return MIN_BIND_BATCH
        decay = max(0.0, rows_per_binding - 1.0) / self.batch_row_scale
        if models:
            setup = max(self.costs_for(m).call_setup for m in models)
            if setup > NETWORK_SETUP_THRESHOLD:
                decay /= setup / NETWORK_SETUP_THRESHOLD
        size = int(MAX_BIND_BATCH / (1.0 + decay))
        return min(MAX_BIND_BATCH, max(MIN_BIND_BATCH, size))


#: Shared default instance (used when no model is configured explicitly).
DEFAULT_COST_MODEL = CostModel()
