"""Per-model cardinality estimators over digest structures.

Each function estimates the output cardinality of one sub-query against
one source, using only summaries the mediator already maintains:

* **relational** — per-column value-set summaries (top-k frequencies for
  equality predicates, equi-width histograms for ranges, distinct counts
  for join keys and parameter bindings);
* **RDF** — per-pattern triple counts from the graph's permutation
  indexes, with join-variable reductions from position distinct counts;
* **full-text** — inverted-index document frequencies per query clause;
* **JSON** — dataguide path counts refined by per-path index postings.

Every estimator returns ``None`` when it cannot derive a safe number
(unsupported syntax, unknown fields, empty metadata); the caller then
falls back to the wrapper's own ``estimate()``.  ``values`` carries the
*known* constant bindings of the atom, so equality predicates on
constants are priced from the actual value's frequency rather than an
average.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from repro.core.sources import (
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SQLQuery,
    _PLACEHOLDER_RE,
    _plain_select_items,
    _referenced_tables,
    _to_rdf_term,
)
from repro.digest.valueset import ValueSetSummary
from repro.rdf.terms import URI, Variable

#: ``summary_for(table, column)`` -> the column's value-set summary.
ColumnSummaries = Callable[[str, str], Optional[ValueSetSummary]]

#: Default selectivity of a WHERE conjunct the parser cannot price.
UNKNOWN_PREDICATE_SELECTIVITY = 1.0 / 3.0

#: Constructs the SQL estimator does not model; their presence routes
#: the whole statement to the wrapper's fallback estimate.
_SQL_UNSUPPORTED_RE = re.compile(
    r"\bor\b|\bnot\b|\blike\b|\bin\s*\(|\bunion\b|\bhaving\b|\bgroup\s+by\b"
    r"|\blimit\b|\bdistinct\b|\b(?:count|sum|avg|min|max)\s*\(",
    re.IGNORECASE,
)

_SQL_WHERE_RE = re.compile(r"\bwhere\b(.*?)(?:\border\s+by\b|$)",
                           re.IGNORECASE | re.DOTALL)

_SQL_COMPARISON_RE = re.compile(
    r"^\s*([A-Za-z_][\w.]*)\s*(=|<=|>=|<>|!=|<|>)\s*(.+?)\s*$", re.DOTALL)

_SQL_STRING_RE = re.compile(r"^'((?:[^']|'')*)'$")

_NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?$")


# ---------------------------------------------------------------------------
# Relational
# ---------------------------------------------------------------------------

def estimate_sql(source: RelationalSource, query: SQLQuery, bound: set[str],
                 values: dict[str, object],
                 summary_for: ColumnSummaries) -> Optional[float]:
    """Histogram/top-k estimate of a SQL SELECT, or ``None`` to fall back."""
    sql = query.sql
    if _SQL_UNSUPPORTED_RE.search(sql):
        return None
    tables = _referenced_tables(sql)
    if not tables:
        return None
    database = source.database
    cardinality = 1.0
    for table in tables:
        if not database.has_table(table):
            return None
        cardinality *= max(1, len(database.table(table)))

    def resolve(ident: str) -> Optional[ValueSetSummary]:
        if "." in ident:
            table, column = ident.rsplit(".", 1)
            return summary_for(table, column)
        for table in tables:
            summary = summary_for(table, ident)
            if summary is not None:
                return summary
        return None

    selectivity = 1.0
    where = _SQL_WHERE_RE.search(sql)
    if where:
        for conjunct in re.split(r"\band\b", where.group(1), flags=re.IGNORECASE):
            if not conjunct.strip():
                continue
            selectivity *= _conjunct_selectivity(conjunct, resolve, values)

    # Bindings arriving on plain output columns restrict the result to
    # one value of that column: 1/distinct, or the value's own frequency
    # when it is a known constant.
    outputs = {output: expression
               for expression, output in _plain_select_items(sql)}
    required = query.required_parameters()
    for variable in (query.output_variables() & bound) - required:
        expression = outputs.get(variable)
        summary = resolve(expression) if expression else None
        if summary is None:
            selectivity *= 0.1
        elif variable in values:
            selectivity *= summary.selectivity(values[variable])
        else:
            selectivity *= 1.0 / max(1, summary.distinct_values)
    return max(0.0, cardinality * selectivity)


def _conjunct_selectivity(conjunct: str, resolve: ColumnSummaries,
                          values: dict[str, object]) -> float:
    match = _SQL_COMPARISON_RE.match(conjunct)
    if not match:
        return UNKNOWN_PREDICATE_SELECTIVITY
    ident, op, rhs = match.group(1), match.group(2), match.group(3).strip()
    summary = resolve(ident)
    rhs_kind, rhs_value = _parse_rhs(rhs)
    if rhs_kind == "param" and rhs_value in values:
        rhs_kind, rhs_value = "literal", values[rhs_value]
    if op in ("<>", "!="):
        return 0.9
    if op == "=":
        if rhs_kind == "literal":
            if summary is None:
                return 0.1
            return summary.selectivity(rhs_value)
        if rhs_kind == "param":
            if summary is None:
                return 0.1
            return 1.0 / max(1, summary.distinct_values)
        if rhs_kind == "ident":
            left = summary
            right = resolve(rhs_value)
            distinct = max(
                left.distinct_values if left is not None else 0,
                right.distinct_values if right is not None else 0,
            )
            return 1.0 / max(1, distinct)
        return UNKNOWN_PREDICATE_SELECTIVITY
    # Range comparison: price from the histogram when the column is numeric.
    if rhs_kind in ("literal", "param"):
        if (rhs_kind == "literal" and summary is not None
                and isinstance(rhs_value, (int, float))):
            selectivity = summary.range_selectivity(op, float(rhs_value))
            if selectivity is not None:
                return selectivity
        return 0.3
    return UNKNOWN_PREDICATE_SELECTIVITY


def _parse_rhs(rhs: str):
    string = _SQL_STRING_RE.match(rhs)
    if string:
        return "literal", string.group(1).replace("''", "'")
    if _NUMBER_RE.match(rhs):
        return "literal", float(rhs) if "." in rhs else int(rhs)
    placeholder = re.fullmatch(r"\{([A-Za-z_][\w]*)\}", rhs)
    if placeholder:
        return "param", placeholder.group(1)
    if re.fullmatch(r"[A-Za-z_][\w.]*", rhs):
        return "ident", rhs
    return "unknown", rhs


# ---------------------------------------------------------------------------
# RDF
# ---------------------------------------------------------------------------

def estimate_bgp(source: RDFSource, query: RDFQuery, bound: set[str],
                 values: dict[str, object]) -> Optional[float]:
    """Index-count estimate of a BGP with join-variable reductions."""
    graph = source.effective_graph()
    bgp = query.bgp
    if values:
        binding = {variable: _to_rdf_term(values[variable.name])
                   for variable in bgp.variables() if variable.name in values}
        if binding:
            bgp = bgp.bind(binding)
    patterns = list(bgp.patterns)
    if not patterns:
        return 0.0
    counted = sorted((graph.count(p), i, p) for i, p in enumerate(patterns))
    if counted[0][0] == 0:
        return 0.0
    cardinality: Optional[float] = None
    seen: set[str] = set()
    for count, _, pattern in counted:
        names = _pattern_variables(pattern)
        if cardinality is None:
            cardinality = float(count)
        else:
            shared = names & seen
            if shared:
                reduction = max(_distinct_at(graph, pattern, name)
                                for name in shared)
                cardinality *= count / max(1.0, reduction)
            else:
                cardinality *= count
        seen |= names
    assert cardinality is not None
    # Mediator-bound variables with unknown values: each fixes the
    # variable to one of its distinct values.
    for name in (query.output_variables() & bound) - set(values):
        distincts = [_distinct_at(graph, p, name) for p in patterns
                     if name in _pattern_variables(p)]
        if distincts:
            cardinality /= max(1.0, max(distincts))
    return max(0.0, cardinality)


def _pattern_variables(pattern) -> set[str]:
    return {term.name for term in (pattern.subject, pattern.predicate, pattern.obj)
            if isinstance(term, Variable)}


def _distinct_at(graph, pattern, name: str) -> float:
    """Distinct values the graph holds at ``name``'s position in ``pattern``."""
    predicate = pattern.predicate if isinstance(pattern.predicate, URI) else None
    if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
        obj = pattern.obj if not isinstance(pattern.obj, Variable) else None
        return float(len(graph.subjects(predicate=predicate, obj=obj)) or 1)
    if isinstance(pattern.obj, Variable) and pattern.obj.name == name:
        subject = pattern.subject if not isinstance(pattern.subject, Variable) else None
        return float(len(graph.objects(subject=subject, predicate=predicate)) or 1)
    return float(len(graph.predicates()) or 1)


# ---------------------------------------------------------------------------
# Full-text
# ---------------------------------------------------------------------------

def estimate_fulltext(source: FullTextSource, query: FullTextQuery,
                      bound: set[str],
                      values: dict[str, object]) -> Optional[float]:
    """Document-frequency estimate of a conjunctive full-text template."""
    template = query.query_template
    if re.search(r'["\[\]()]', template):
        return None
    if re.search(r"\b(?:OR|NOT|TO)\b", template):
        return None
    store = source.store
    total = len(store)
    if total == 0:
        return 0.0
    # Constant clauses intersect their postings *exactly* (the indexes
    # are in memory), so correlated or disjoint terms are priced right;
    # only run-time parameters fall back to selectivity arithmetic.
    matched: Optional[set] = None
    selectivity = 1.0
    for part in template.split():
        if part.upper() == "AND":
            continue
        if part in ("*:*", "*"):
            continue
        if ":" in part:
            path, term = part.split(":", 1)
        else:
            if store.default_field is None:
                return None
            path, term = store.default_field, part
        placeholder = re.fullmatch(r"\{([A-Za-z_][\w]*)\}", term)
        if placeholder:
            name = placeholder.group(1)
            if name in values:
                term = str(values[name])
            else:
                average = store.average_document_frequency(path)
                if average is None:
                    return None
                selectivity *= min(1.0, average / total)
                continue
        elif "{" in term:
            return None
        documents = store.term_documents(path, term)
        if documents is None:
            return None
        matched = documents if matched is None else matched & documents
    base = float(len(matched)) if matched is not None else float(total)
    cardinality = base * selectivity
    fields = query.fields()
    required = query.required_parameters()
    for variable in (query.output_variables() & bound) - required:
        path = fields.get(variable)
        if path is None or path == "_score":
            cardinality *= 0.1
            continue
        if variable in values:
            frequency = store.document_frequency(path, str(values[variable]))
            if frequency is not None:
                cardinality *= frequency / total
                continue
        distinct = store.distinct_term_count(path)
        if distinct:
            cardinality /= distinct
        else:
            cardinality *= 0.1
    if query.limit is not None:
        cardinality = min(cardinality, float(query.limit))
    return max(0.0, cardinality)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def estimate_json(source: JSONSource, query: JSONQuery, bound: set[str],
                  values: dict[str, object]) -> Optional[float]:
    """Dataguide + path-index estimate of a tree pattern.

    Mirrors the wrapper's digest-backed logic but additionally prices
    parameters whose constant value is *known* from the exact postings
    of that value instead of the average.
    """
    from repro.json.pattern import Parameter as JSONParameter

    store = source.store
    pattern = query.pattern
    # Purely structural patterns (no predicates, no bound variables) are
    # answered *exactly* from the XPath-accelerator encoding: per-axis
    # document cardinalities intersect, and variable leaves contribute
    # their true fan-out (rows, not documents).
    structural = (all(not leaf.predicates for leaf in pattern.leaves)
                  and not (pattern.variables() & bound))
    if structural and getattr(source.matcher, "accel", False):
        view_getter = getattr(store, "encoding_view", None)
        if view_getter is not None:
            from repro.json.accel import structural_row_estimate

            rows = structural_row_estimate(view_getter(), pattern)
            if rows is not None:
                if query.limit is not None:
                    rows = min(rows, float(query.limit))
                return max(0.0, rows)
    guide = store.dataguide()
    estimate = float(len(store))
    for leaf in query.pattern.leaves:
        index = store.index_for(leaf.path)
        if index is None:
            present = len(store.doc_ids_with_path(leaf.path))
            if present == 0:
                return 0.0
            estimate = min(estimate, float(present))
            continue
        leaf_estimate = guide.coverage(leaf.path) * guide.document_count
        leaf_estimate = min(leaf_estimate, float(index.document_count))
        for predicate in leaf.predicates:
            if isinstance(predicate.value, JSONParameter):
                name = predicate.value.name
                if predicate.op == "=" and name in values:
                    leaf_estimate = min(leaf_estimate,
                                        float(len(index.lookup_eq(values[name]))))
                else:
                    leaf_estimate = min(leaf_estimate, index.average_postings())
            elif predicate.op == "=":
                leaf_estimate = min(leaf_estimate,
                                    float(len(index.lookup_eq(predicate.value))))
            elif predicate.op != "!=":
                leaf_estimate = min(leaf_estimate,
                                    float(len(index.lookup_cmp(predicate.op,
                                                               predicate.value))))
        if leaf.variable is not None and leaf.variable in bound:
            if leaf.variable in values:
                leaf_estimate = min(leaf_estimate,
                                    float(len(index.lookup_eq(values[leaf.variable]))))
            else:
                leaf_estimate = min(leaf_estimate, index.average_postings())
        estimate = min(estimate, leaf_estimate)
    if any(leaf.constant_equality() is not None for leaf in query.pattern.leaves):
        estimate = min(estimate, float(len(source.matcher.candidates(query.pattern))))
    if query.limit is not None:
        estimate = min(estimate, float(query.limit))
    return max(0.0, estimate)
