"""Statistics layer: digest-backed cardinality estimation and costing.

The planner's classical greedy pass ordered sub-queries by each
wrapper's ad-hoc ``estimate()``.  This package replaces those numbers
with estimates derived from the *digest structures* the mediator
already maintains — histograms and top-k summaries for range/equality
predicates, value-set distinct counts for join keys, dataguide path
counts for JSON tree patterns, inverted-index document frequencies for
full-text — plus a calibrated per-source cost model, and closes the
loop with run-time feedback (observed cardinalities override future
estimates, and the statistics revision stamps plan-cache entries so
feedback invalidates stale plans).
"""

from repro.stats.catalog import StatisticsCatalog
from repro.stats.cost import (
    CostModel,
    DEFAULT_COST_MODEL,
    MAX_BIND_BATCH,
    MIN_BIND_BATCH,
    SourceCosts,
)

__all__ = [
    "StatisticsCatalog",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "SourceCosts",
    "MIN_BIND_BATCH",
    "MAX_BIND_BATCH",
]
