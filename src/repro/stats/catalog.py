"""The statistics catalog: estimates, feedback and the revision stamp.

A :class:`StatisticsCatalog` is the single estimation service shared by
every planner and executor of a mixed instance.  For each (source,
sub-query, bound-variable set) it answers, in order of preference:

1. **feedback** — a cardinality observed at run time for the same
   canonical sub-query under the same bound variables (recorded by the
   adaptive executor when an estimate turned out wrong);
2. **digest-backed estimators** (:mod:`repro.stats.estimators`) over
   histograms, value-set distinct counts, dataguide path counts and
   inverted-index document frequencies;
3. the wrapper's own ``estimate()`` as a fallback (also used when a
   wrapper sets ``trust_wrapper_estimate`` to advertise that it carries
   better statistics than the mediator can derive).

Recording feedback bumps :attr:`revision`.  The revision is part of
every plan-cache key, so cached plans built from superseded statistics
are invalidated by construction.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.cache.keys import canonical_query
from repro.core.deltas import INSERT
from repro.core.sources import (
    DataSource,
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SourceQuery,
    SQLQuery,
)
from repro.digest.valueset import ValueSetSummary
from repro.stats.cost import CostModel, DEFAULT_COST_MODEL
from repro.stats import estimators


class StatisticsCatalog:
    """Digest-backed cardinality statistics with run-time feedback."""

    def __init__(self, cost_model: CostModel | None = None,
                 histogram_buckets: int = 32):
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.histogram_buckets = histogram_buckets
        self._feedback: dict[tuple, float] = {}
        self._revision = 0
        self._lock = threading.Lock()
        #: (source token, source version, table, column) -> summary.
        self._column_summaries: dict[tuple, Optional[ValueSetSummary]] = {}
        #: Streaming maintenance counters: full column scans vs. prior
        #: summaries carried forward by absorbing insert-only deltas.
        self.summaries_built = 0
        self.summaries_absorbed = 0

    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Monotonic counter bumped by every effective feedback record."""
        return self._revision

    # ------------------------------------------------------------------
    def estimate(self, source: DataSource, query: SourceQuery,
                 bound: set[str] | None = None,
                 values: dict[str, object] | None = None) -> float:
        """Estimated output rows of ``query`` on ``source``.

        ``bound`` are the sub-query's *formal* variables already bound
        when the step runs; ``values`` the subset whose constant values
        are known at plan time (atom constants) — those are priced from
        the actual value's frequency.
        """
        bound = set(bound or ())
        values = dict(values or {})
        key = self.feedback_key(source, query, bound)
        if key is not None:
            with self._lock:
                observed = self._feedback.get(key)
            if observed is not None:
                return observed
        if getattr(source, "trust_wrapper_estimate", False):
            return source.estimate(query, bound)
        derived = self._derive(source, query, bound, values)
        if derived is not None:
            return derived
        return source.estimate(query, bound)

    def _derive(self, source: DataSource, query: SourceQuery,
                bound: set[str], values: dict[str, object]) -> Optional[float]:
        try:
            if isinstance(source, RelationalSource) and isinstance(query, SQLQuery):
                return estimators.estimate_sql(
                    source, query, bound, values,
                    lambda table, column: self.column_summary(source, table, column))
            if isinstance(source, RDFSource) and isinstance(query, RDFQuery):
                return estimators.estimate_bgp(source, query, bound, values)
            if isinstance(source, FullTextSource) and isinstance(query, FullTextQuery):
                return estimators.estimate_fulltext(source, query, bound, values)
            if isinstance(source, JSONSource) and isinstance(query, JSONQuery):
                return estimators.estimate_json(source, query, bound, values)
        except Exception:
            # Any estimator hiccup (odd syntax, missing metadata) must
            # never fail planning — the wrapper fallback takes over.
            return None
        return None

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def record(self, source: DataSource, query: SourceQuery,
               bound: set[str], observed: float) -> bool:
        """Record an observed cardinality; True when it changed anything.

        The key canonicalises the sub-query (renaming-invariant) and the
        bound-variable set, so structurally identical sub-queries of
        future CMQs benefit.  An effective change bumps the revision,
        invalidating every plan-cache entry stamped with the old one.
        """
        key = self.feedback_key(source, query, set(bound))
        if key is None:
            return False
        with self._lock:
            previous = self._feedback.get(key)
            self._feedback[key] = observed
            if previous is None or previous != observed:
                self._revision += 1
                return True
        return False

    def feedback_key(self, source: DataSource, query: SourceQuery,
                     bound: set[str]) -> Optional[tuple]:
        """Canonical feedback key, or ``None`` for uncanonicalisable input."""
        token = getattr(source, "cache_token", None)
        if token is None:
            return None
        canonical = canonical_query(query)
        if canonical is None:
            return None
        renamed = frozenset(canonical.rename.get(name, name) for name in bound)
        return (token, canonical.key, renamed)

    def feedback_count(self) -> int:
        """Number of recorded observations."""
        with self._lock:
            return len(self._feedback)

    def clear_feedback(self) -> None:
        """Drop every observation (the revision still advances)."""
        with self._lock:
            if self._feedback:
                self._feedback.clear()
                self._revision += 1

    # ------------------------------------------------------------------
    # Relational column summaries
    # ------------------------------------------------------------------
    def column_summary(self, source: RelationalSource, table: str,
                       column: str) -> Optional[ValueSetSummary]:
        """Value-set summary of one column, cached per source version.

        Under streaming ingestion a version bump no longer forces a full
        column re-scan: when the delta journal shows only inserts between
        the cached summary's version and the current one, the inserted
        values are absorbed into the prior summary in place
        (:meth:`~repro.digest.valueset.ValueSetSummary.absorb`) and the
        summary is re-keyed under the new version.
        """
        version = source.version()
        if version is None:
            return None
        key = (source.cache_token, version, table.lower(), column.lower())
        with self._lock:
            if key in self._column_summaries:
                return self._column_summaries[key]
        summary: Optional[ValueSetSummary] = None
        if source.database.has_table(table):
            table_obj = source.database.table(table)
            actual = next((c.name for c in table_obj.schema.columns
                           if c.name.lower() == column.lower()), None)
            if actual is not None:
                summary = self._absorb_column_delta(source, key, actual)
                if summary is None:
                    summary = ValueSetSummary(
                        table_obj.column_values(actual),
                        histogram_buckets=self.histogram_buckets)
                    with self._lock:
                        self.summaries_built += 1
        with self._lock:
            self._column_summaries[key] = summary
            # Drop summaries of superseded versions of the same column.
            stale = [k for k in self._column_summaries
                     if k[0] == key[0] and k[2:] == key[2:] and k[1] != version]
            for k in stale:
                del self._column_summaries[k]
        return summary

    def _absorb_column_delta(self, source: RelationalSource, key: tuple,
                             column: str) -> Optional[ValueSetSummary]:
        """Carry a prior-version summary forward over insert-only deltas.

        ``None`` means "rebuild from a full scan": no prior summary, a
        gap in the journal, or deltas that are not pure inserts for the
        summarised table.
        """
        table = key[2]
        with self._lock:
            prior = [(k, s) for k, s in self._column_summaries.items()
                     if k[0] == key[0] and k[2:] == key[2:]
                     and isinstance(k[1], int) and k[1] < key[1]
                     and s is not None]
        if not prior:
            return None
        prior_key, summary = max(prior, key=lambda pair: pair[0][1])
        records = source.deltas_since(prior_key[1], key[1])
        if records is None:
            return None
        relevant = [r for r in records if r.scope is None or r.scope == table]
        if any(r.kind != INSERT for r in relevant):
            return None
        summary.absorb([row.get(column)
                        for record in relevant for row in record.items])
        with self._lock:
            self.summaries_absorbed += 1
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StatisticsCatalog(revision={self._revision}, "
                f"feedback={len(self._feedback)})")
