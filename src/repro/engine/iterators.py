"""Volcano-style iterator operators over binding tuples.

The paper's mediator performs "the remaining processing (joins etc.) on
subquery results ... within our in-house iterator-based execution engine".
This module is that engine: every operator consumes and produces *binding
tuples* (dictionaries mapping variable names to values), so the same
operators serve RDF bindings, relational rows and full-text hits once the
source wrappers have normalised them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import MixedQueryError

#: A binding tuple: variable name -> value.
Row = dict[str, object]


@dataclass
class OperatorStats:
    """Per-operator row counters, collected when tracing is enabled."""

    produced: int = 0
    consumed: int = 0


class Operator:
    """Base class of every iterator operator."""

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self.stats = OperatorStats()

    def __iter__(self) -> Iterator[Row]:
        for row in self._produce():
            self.stats.produced += 1
            yield row

    def _produce(self) -> Iterator[Row]:
        raise NotImplementedError

    def rows(self) -> list[Row]:
        """Fully evaluate the operator and return its output as a list."""
        return list(self)

    def explain(self, indent: int = 0) -> str:
        """Return an indented textual plan rooted at this operator."""
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One line description used by :meth:`explain`."""
        return self.name

    def children(self) -> Sequence["Operator"]:
        """Child operators (empty for leaves)."""
        return ()


class MaterializedScan(Operator):
    """Leaf operator over an already materialised list of rows."""

    def __init__(self, rows: Iterable[Row], name: str = "scan"):
        super().__init__(name)
        self._rows = list(rows)

    def _produce(self) -> Iterator[Row]:
        for row in self._rows:
            yield dict(row)

    def describe(self) -> str:
        return f"{self.name}({len(self._rows)} rows)"


class CallbackScan(Operator):
    """Leaf operator that pulls rows from a callable at iteration time.

    Used by the mediator to defer a source sub-query until the plan
    actually needs its rows.
    """

    def __init__(self, fetch: Callable[[], Iterable[Row]], name: str = "fetch"):
        super().__init__(name)
        self._fetch = fetch

    def _produce(self) -> Iterator[Row]:
        for row in self._fetch():
            yield dict(row)


class Select(Operator):
    """Filter rows by a predicate."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool], name: str = "select"):
        super().__init__(name)
        self.child = child
        self.predicate = predicate

    def _produce(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.consumed += 1
            if self.predicate(row):
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Project(Operator):
    """Keep (and optionally rename) a subset of the variables."""

    def __init__(self, child: Operator, columns: Sequence[str],
                 renames: dict[str, str] | None = None, name: str = "project"):
        super().__init__(name)
        self.child = child
        self.columns = list(columns)
        self.renames = renames or {}

    def _produce(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.consumed += 1
            out: Row = {}
            for column in self.columns:
                out[self.renames.get(column, column)] = row.get(column)
            yield out

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.columns)})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Extend(Operator):
    """Add a computed variable to every row."""

    def __init__(self, child: Operator, variable: str, compute: Callable[[Row], object],
                 name: str = "extend"):
        super().__init__(name)
        self.child = child
        self.variable = variable
        self.compute = compute

    def _produce(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.consumed += 1
            row = dict(row)
            row[self.variable] = self.compute(row)
            yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class NestedLoopJoin(Operator):
    """Join two inputs with an arbitrary condition (inner join)."""

    def __init__(self, left: Operator, right: Operator,
                 condition: Callable[[Row, Row], bool] | None = None, name: str = "nljoin"):
        super().__init__(name)
        self.left = left
        self.right = right
        self.condition = condition

    def _produce(self) -> Iterator[Row]:
        right_rows = self.right.rows()
        for left_row in self.left:
            self.stats.consumed += 1
            for right_row in right_rows:
                if self.condition is None or self.condition(left_row, right_row):
                    if _compatible(left_row, right_row):
                        yield {**left_row, **right_row}

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class HashJoin(Operator):
    """Equi-join on the variables shared by both inputs (natural join)."""

    def __init__(self, left: Operator, right: Operator, keys: Sequence[str] | None = None,
                 name: str = "hashjoin"):
        super().__init__(name)
        self.left = left
        self.right = right
        self.keys = list(keys) if keys is not None else None

    def _produce(self) -> Iterator[Row]:
        right_rows = self.right.rows()
        left_rows = self.left.rows()
        keys = self.keys
        if keys is None:
            left_vars = set().union(*(set(r) for r in left_rows)) if left_rows else set()
            right_vars = set().union(*(set(r) for r in right_rows)) if right_rows else set()
            keys = sorted(left_vars & right_vars)
        if not keys:
            # Degenerate to a cross product.
            for left_row in left_rows:
                for right_row in right_rows:
                    yield {**left_row, **right_row}
            return
        buckets: dict[tuple, list[Row]] = defaultdict(list)
        for right_row in right_rows:
            buckets[tuple(right_row.get(k) for k in keys)].append(right_row)
        for left_row in left_rows:
            self.stats.consumed += 1
            for right_row in buckets.get(tuple(left_row.get(k) for k in keys), ()):
                yield {**left_row, **right_row}

    def describe(self) -> str:
        keys = self.keys if self.keys is not None else "natural"
        return f"{self.name}(keys={keys})"

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class BindJoin(Operator):
    """Dependent join: re-evaluate the right side once per left binding.

    This is the operator behind the mediator's "bindings for data sources
    must be obtained before the source can be queried" rule — the ``fetch``
    callable receives the current left-hand bindings (typically to fill in
    sub-query parameters or even the identity of the target source) and
    returns matching rows from the source.
    """

    def __init__(self, left: Operator, fetch: Callable[[Row], Iterable[Row]],
                 name: str = "bindjoin", deduplicate_calls: bool = True,
                 call_key: Callable[[Row], tuple] | None = None):
        super().__init__(name)
        self.left = left
        self.fetch = fetch
        self.deduplicate_calls = deduplicate_calls
        self.call_key = call_key
        self.calls = 0

    def _produce(self) -> Iterator[Row]:
        cache: dict[tuple, list[Row]] = {}
        for left_row in self.left:
            self.stats.consumed += 1
            key = self.call_key(left_row) if self.call_key else tuple(sorted(
                (k, _hashable(v)) for k, v in left_row.items()
            ))
            if self.deduplicate_calls and key in cache:
                fetched = cache[key]
            else:
                self.calls += 1
                fetched = [dict(r) for r in self.fetch(left_row)]
                if self.deduplicate_calls:
                    cache[key] = fetched
            for right_row in fetched:
                if _compatible(left_row, right_row):
                    yield {**left_row, **right_row}

    def children(self) -> Sequence[Operator]:
        return (self.left,)


class Distinct(Operator):
    """Remove duplicate rows (order-preserving)."""

    def __init__(self, child: Operator, name: str = "distinct"):
        super().__init__(name)
        self.child = child

    def _produce(self) -> Iterator[Row]:
        seen: set[tuple] = set()
        for row in self.child:
            self.stats.consumed += 1
            key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Sort(Operator):
    """Sort rows by one or more variables."""

    def __init__(self, child: Operator, keys: Sequence[tuple[str, bool]], name: str = "sort"):
        super().__init__(name)
        self.child = child
        self.keys = list(keys)

    def _produce(self) -> Iterator[Row]:
        rows = self.child.rows()
        self.stats.consumed += len(rows)
        for variable, descending in reversed(self.keys):
            rows.sort(key=lambda r: _sort_key(r.get(variable)), reverse=descending)
        yield from rows

    def describe(self) -> str:
        return f"{self.name}({self.keys})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Limit(Operator):
    """Pass through at most ``count`` rows."""

    def __init__(self, child: Operator, count: int, name: str = "limit"):
        super().__init__(name)
        self.child = child
        self.count = count

    def _produce(self) -> Iterator[Row]:
        if self.count <= 0:
            return
        produced = 0
        for row in self.child:
            self.stats.consumed += 1
            yield row
            produced += 1
            if produced >= self.count:
                return

    def describe(self) -> str:
        return f"{self.name}({self.count})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Union(Operator):
    """Concatenate the outputs of several children."""

    def __init__(self, operands: Sequence[Operator], name: str = "union"):
        super().__init__(name)
        self.operands = list(operands)

    def _produce(self) -> Iterator[Row]:
        for operand in self.operands:
            for row in operand:
                self.stats.consumed += 1
                yield row

    def children(self) -> Sequence[Operator]:
        return tuple(self.operands)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute per group."""

    function: str  # count | sum | avg | min | max | collect
    variable: str | None
    output: str


class Aggregate(Operator):
    """Group rows by key variables and compute aggregates per group."""

    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec], name: str = "aggregate"):
        super().__init__(name)
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def _produce(self) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = defaultdict(list)
        for row in self.child:
            self.stats.consumed += 1
            key = tuple(_hashable(row.get(k)) for k in self.group_by)
            groups[key].append(row)
        for key, rows in groups.items():
            out: Row = dict(zip(self.group_by, (rows[0].get(k) for k in self.group_by)))
            for spec in self.aggregates:
                out[spec.output] = _compute(spec, rows)
            yield out

    def describe(self) -> str:
        functions = ", ".join(f"{a.function}({a.variable or '*'})" for a in self.aggregates)
        return f"{self.name}(by={self.group_by}, {functions})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


def _compute(spec: AggregateSpec, rows: list[Row]) -> object:
    function = spec.function.lower()
    if function == "count" and spec.variable is None:
        return len(rows)
    values = [row.get(spec.variable) for row in rows if row.get(spec.variable) is not None]
    if function == "count":
        return len(values)
    if function == "collect":
        return list(values)
    if not values:
        return None
    if function == "sum":
        return sum(values)
    if function == "avg":
        return sum(values) / len(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    raise MixedQueryError(f"unsupported aggregate function {spec.function!r}")


def _compatible(left: Row, right: Row) -> bool:
    """True when the two rows agree on every shared variable."""
    for key, value in right.items():
        if key in left and left[key] != value:
            return False
    return True


def _hashable(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _sort_key(value: object) -> tuple:
    if value is None:
        return (2, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value)
    return (1, str(value))
