"""Volcano-style iterator operators over binding tuples.

The paper's mediator performs "the remaining processing (joins etc.) on
subquery results ... within our in-house iterator-based execution engine".
This module is that engine: every operator consumes and produces *binding
tuples* (dictionaries mapping variable names to values), so the same
operators serve RDF bindings, relational rows and full-text hits once the
source wrappers have normalised them.

Internally the hot path is *batch-oriented*: operators exchange
:class:`~repro.engine.batch.BindingBatch` objects (shared column header +
tuple rows) through :meth:`Operator.batches`, and only materialise dict
rows at the per-row interface boundary.  An operator implements either
``_produce`` (row at a time) or ``_produce_batches`` (batch at a time);
the base class derives the missing one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    BatchAccumulator,
    BindingBatch,
    batches_from_rows,
    merge_spec,
)
from repro.errors import MixedQueryError

#: A binding tuple: variable name -> value.
Row = dict[str, object]


@dataclass
class OperatorStats:
    """Per-operator row counters, collected when tracing is enabled."""

    produced: int = 0
    consumed: int = 0


class Operator:
    """Base class of every iterator operator.

    Subclasses override ``_produce`` (yield dict rows) or
    ``_produce_batches`` (yield :class:`BindingBatch` objects); each
    default implementation is derived from the other, so batch-native and
    row-native operators compose freely.
    """

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self.stats = OperatorStats()

    def __iter__(self) -> Iterator[Row]:
        for row in self._produce():
            self.stats.produced += 1
            yield row

    def _produce(self) -> Iterator[Row]:
        for batch in self._produce_batches():
            yield from batch.dicts()

    def _produce_batches(self) -> Iterator[BindingBatch]:
        yield from batches_from_rows(self._produce(), DEFAULT_BATCH_SIZE)

    def batches(self) -> Iterator[BindingBatch]:
        """Evaluate the operator batch-wise (the engine's hot path)."""
        for batch in self._produce_batches():
            self.stats.produced += len(batch)
            yield batch

    def rows(self) -> list[Row]:
        """Fully evaluate the operator and return its output as a list."""
        return list(self)

    def estimated_size(self) -> int | None:
        """Known output row count, or ``None`` when it cannot be told cheaply."""
        return None

    def explain(self, indent: int = 0) -> str:
        """Return an indented textual plan rooted at this operator."""
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One line description used by :meth:`explain`."""
        return self.name

    def children(self) -> Sequence["Operator"]:
        """Child operators (empty for leaves)."""
        return ()


class MaterializedScan(Operator):
    """Leaf operator over an already materialised list of rows.

    Rows are converted to columnar batches once at construction; every
    iteration re-materialises fresh dicts, so callers may mutate the
    output without corrupting the scan.
    """

    def __init__(self, rows: Iterable[Row], name: str = "scan"):
        super().__init__(name)
        self._batches = list(batches_from_rows(iter(rows), DEFAULT_BATCH_SIZE))
        self._count = sum(len(b) for b in self._batches)

    def _produce_batches(self) -> Iterator[BindingBatch]:
        yield from self._batches

    def estimated_size(self) -> int:
        return self._count

    def describe(self) -> str:
        return f"{self.name}({self._count} rows)"


class CallbackScan(Operator):
    """Leaf operator that pulls rows from a callable at iteration time.

    Used by the mediator to defer a source sub-query until the plan
    actually needs its rows.
    """

    def __init__(self, fetch: Callable[[], Iterable[Row]], name: str = "fetch"):
        super().__init__(name)
        self._fetch = fetch

    def _produce(self) -> Iterator[Row]:
        for row in self._fetch():
            yield dict(row)


class Select(Operator):
    """Filter rows by a predicate."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool], name: str = "select"):
        super().__init__(name)
        self.child = child
        self.predicate = predicate

    def _produce(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.consumed += 1
            if self.predicate(row):
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Project(Operator):
    """Keep (and optionally rename) a subset of the variables."""

    def __init__(self, child: Operator, columns: Sequence[str],
                 renames: dict[str, str] | None = None, name: str = "project"):
        super().__init__(name)
        self.child = child
        self.columns = list(columns)
        self.renames = renames or {}

    def _produce_batches(self) -> Iterator[BindingBatch]:
        out_columns = tuple(self.renames.get(c, c) for c in self.columns)
        for batch in self.child.batches():
            self.stats.consumed += len(batch)
            project = batch.projector(self.columns)
            yield BindingBatch(out_columns, [project(row) for row in batch.rows])

    def estimated_size(self) -> int | None:
        return self.child.estimated_size()

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.columns)})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Extend(Operator):
    """Add a computed variable to every row."""

    def __init__(self, child: Operator, variable: str, compute: Callable[[Row], object],
                 name: str = "extend"):
        super().__init__(name)
        self.child = child
        self.variable = variable
        self.compute = compute

    def _produce(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.consumed += 1
            row = dict(row)
            row[self.variable] = self.compute(row)
            yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class NestedLoopJoin(Operator):
    """Join two inputs with an arbitrary condition (inner join)."""

    def __init__(self, left: Operator, right: Operator,
                 condition: Callable[[Row, Row], bool] | None = None, name: str = "nljoin"):
        super().__init__(name)
        self.left = left
        self.right = right
        self.condition = condition

    def _produce(self) -> Iterator[Row]:
        right_rows = self.right.rows()
        for left_row in self.left:
            self.stats.consumed += 1
            for right_row in right_rows:
                if self.condition is None or self.condition(left_row, right_row):
                    if _compatible(left_row, right_row):
                        yield {**left_row, **right_row}

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class HashJoin(Operator):
    """Equi-join on the variables shared by both inputs (natural join).

    The hash table is built on the side whose size hint is smaller (the
    right side when the hints cannot tell) and the other side is
    *streamed* batch-wise against it with explicit ``keys``.  When
    ``keys`` is not given they are inferred from the variables present
    on both sides, which requires collecting the probe side's batches
    first (still columnar — no per-row dict materialisation).
    """

    def __init__(self, left: Operator, right: Operator, keys: Sequence[str] | None = None,
                 name: str = "hashjoin"):
        super().__init__(name)
        self.left = left
        self.right = right
        self.keys = list(keys) if keys is not None else None

    def _produce_batches(self) -> Iterator[BindingBatch]:
        left_size = self.left.estimated_size()
        right_size = self.right.estimated_size()
        build_is_left = (left_size is not None and right_size is not None
                         and left_size < right_size)
        build_op, probe_op = (self.left, self.right) if build_is_left \
            else (self.right, self.left)

        build_batches = list(build_op.batches())
        probe_batches = probe_op.batches()

        keys = self.keys
        collected: list[BindingBatch] | None = None
        if keys is None:
            # Natural join: the keys are the variables present on *any*
            # row of both sides, so every probe header must be known
            # before bucketing — collect the probe batches.
            collected = list(probe_batches)
            build_vars: set[str] = set()
            for batch in build_batches:
                build_vars.update(batch.columns)
            probe_vars: set[str] = set()
            for batch in collected:
                probe_vars.update(batch.columns)
            keys = sorted(build_vars & probe_vars)

        def probe_stream() -> Iterator[BindingBatch]:
            if collected is not None:
                yield from collected
            else:
                yield from probe_batches

        out = BatchAccumulator(DEFAULT_BATCH_SIZE)
        if not keys:
            # Degenerate to a cross product.
            for probe_batch in probe_stream():
                self.stats.consumed += len(probe_batch)
                for build_batch in build_batches:
                    yield from self._cross(probe_batch, build_batch, build_is_left, out)
            yield from out.flush()
            return

        # Build phase: bucket the build side by its key tuple.
        buckets: dict[tuple, list[tuple[tuple[str, ...], tuple]]] = defaultdict(list)
        for batch in build_batches:
            key_of = batch.projector(keys)
            for row in batch.rows:
                buckets[key_of(row)].append((batch.columns, row))

        # Probe phase: stream the other side against the table.
        merged: dict[tuple, tuple] = {}
        for probe_batch in probe_stream():
            self.stats.consumed += len(probe_batch)
            key_of = probe_batch.projector(keys)
            for probe_row in probe_batch.rows:
                matches = buckets.get(key_of(probe_row))
                if not matches:
                    continue
                for build_columns, build_row in matches:
                    spec = merged.get((probe_batch.columns, build_columns))
                    if spec is None:
                        spec = self._spec(probe_batch.columns, build_columns, build_is_left)
                        merged[(probe_batch.columns, build_columns)] = spec
                    out_columns, picks = spec
                    if build_is_left:
                        pair = (build_row, probe_row)
                    else:
                        pair = (probe_row, build_row)
                    row = tuple(pair[1][i] if take_right else pair[0][i]
                                for take_right, i in picks)
                    yield from out.add(out_columns, row)
        yield from out.flush()

    def _spec(self, probe_columns: tuple[str, ...], build_columns: tuple[str, ...],
              build_is_left: bool):
        # Merged rows must behave like {**left_row, **right_row} with the
        # operator's original left/right orientation.
        if build_is_left:
            return merge_spec(build_columns, probe_columns)
        return merge_spec(probe_columns, build_columns)

    def _cross(self, probe_batch: BindingBatch, build_batch: BindingBatch,
               build_is_left: bool, out: BatchAccumulator) -> Iterator[BindingBatch]:
        out_columns, picks = self._spec(probe_batch.columns, build_batch.columns,
                                        build_is_left)
        for probe_row in probe_batch.rows:
            for build_row in build_batch.rows:
                pair = (build_row, probe_row) if build_is_left else (probe_row, build_row)
                row = tuple(pair[1][i] if take_right else pair[0][i]
                            for take_right, i in picks)
                yield from out.add(out_columns, row)

    def describe(self) -> str:
        keys = self.keys if self.keys is not None else "natural"
        return f"{self.name}(keys={keys})"

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class BindJoin(Operator):
    """Dependent join: re-evaluate the right side once per left binding.

    This is the operator behind the mediator's "bindings for data sources
    must be obtained before the source can be queried" rule — the ``fetch``
    callable receives the current left-hand bindings (typically to fill in
    sub-query parameters or even the identity of the target source) and
    returns matching rows from the source.
    """

    def __init__(self, left: Operator, fetch: Callable[[Row], Iterable[Row]],
                 name: str = "bindjoin", deduplicate_calls: bool = True,
                 call_key: Callable[[Row], tuple] | None = None):
        super().__init__(name)
        self.left = left
        self.fetch = fetch
        self.deduplicate_calls = deduplicate_calls
        self.call_key = call_key
        self.calls = 0
        self._key_orders: dict[frozenset, tuple[str, ...]] = {}

    def _default_key(self, row: Row) -> tuple:
        return _schema_call_key(row, self._key_orders)

    def _produce(self) -> Iterator[Row]:
        cache: dict[tuple, list[Row]] = {}
        key_of = self.call_key or self._default_key
        for left_row in self.left:
            self.stats.consumed += 1
            key = key_of(left_row)
            if self.deduplicate_calls and key in cache:
                fetched = cache[key]
            else:
                self.calls += 1
                fetched = [dict(r) for r in self.fetch(left_row)]
                if self.deduplicate_calls:
                    cache[key] = fetched
            for right_row in fetched:
                if _compatible(left_row, right_row):
                    yield {**left_row, **right_row}

    def children(self) -> Sequence[Operator]:
        return (self.left,)


class BatchBindJoin(Operator):
    """Dependent join shipping *batches* of distinct bindings to a source.

    Instead of one sub-query call per distinct left binding (the classic
    mediator bottleneck), left rows are consumed batch-wise, their
    distinct call keys collected into groups of ``batch_size``, and one
    ``fetch_batch`` call answers the whole group — the source wrapper
    turns it into a native IN-list / disjunctive pushdown when it can.

    ``sieve`` is an optional semi-join filter (typically backed by the
    source's digest value sets): bindings it rejects are proven to have
    no match at the source and are never shipped.  ``probe`` is an
    optional per-binding result-cache lookup consulted after the sieve:
    a non-``None`` answer serves the binding without shipping it, so a
    batch reaching the source consists of cache misses only.
    ``fetch_batch`` receives a list of binding dicts and must return one
    row list per binding, in order.
    """

    def __init__(self, left: Operator, fetch_batch: Callable[[list[Row]], list[list[Row]]],
                 call_key: Callable[[Row], tuple] | None = None,
                 binding_of: Callable[[Row], Row] | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 sieve: Callable[[Row], bool] | None = None,
                 probe: Callable[[Row], list[Row] | None] | None = None,
                 name: str = "batchbind"):
        super().__init__(name)
        self.left = left
        self.fetch_batch = fetch_batch
        self.call_key = call_key
        self.binding_of = binding_of
        self.batch_size = max(1, batch_size)
        self.sieve = sieve
        self.probe = probe
        self.calls = 0
        self.bindings_shipped = 0
        self.sieved_out = 0
        self.cache_hits = 0
        #: Cross-query MQO sharing attributed to this join by the
        #: executor: miss bindings that rode another in-flight query's
        #: fused source call / were answered by its single-flight slot.
        self.fused_probes = 0
        self.shared_results = 0
        self._key_orders: dict[frozenset, tuple[str, ...]] = {}

    def _default_key(self, row: Row) -> tuple:
        return _schema_call_key(row, self._key_orders)

    def _produce(self) -> Iterator[Row]:
        cache: dict[tuple, list[Row]] = {}
        pending: list[tuple[Row, tuple]] = []
        queued: dict[tuple, Row] = {}
        key_of = self.call_key or self._default_key
        binding_of = self.binding_of or (lambda row: dict(row))
        for batch in self.left.batches():
            self.stats.consumed += len(batch)
            for left_row in batch.dicts():
                key = key_of(left_row)
                if key in cache and not pending:
                    # Answer already known and nothing queued ahead of this
                    # row: stream it out immediately, preserving order.
                    yield from self._join(left_row, cache[key])
                    continue
                pending.append((left_row, key))
                if key not in cache and key not in queued:
                    queued[key] = binding_of(left_row)
                if len(queued) >= self.batch_size:
                    self._flush(queued, cache)
                    queued = {}
                    yield from self._drain(pending, cache)
                    pending = []
        if queued:
            self._flush(queued, cache)
        yield from self._drain(pending, cache)

    # ------------------------------------------------------------------
    def _flush(self, queued: dict[tuple, Row], cache: dict[tuple, list[Row]]) -> None:
        to_ship: list[tuple[tuple, Row]] = []
        for key, binding in queued.items():
            if self.sieve is not None and not self.sieve(binding):
                # The digest proves no source row can match this binding.
                cache[key] = []
                self.sieved_out += 1
                continue
            if self.probe is not None:
                hit = self.probe(binding)
                if hit is not None:
                    # The cross-query result cache already knows the answer.
                    cache[key] = hit
                    self.cache_hits += 1
                    continue
            to_ship.append((key, binding))
        if not to_ship:
            return
        self.calls += 1
        self.bindings_shipped += len(to_ship)
        fetched = self.fetch_batch([binding for _, binding in to_ship])
        if len(fetched) != len(to_ship):
            raise MixedQueryError(
                f"batched fetch of {self.name!r} returned {len(fetched)} result lists "
                f"for {len(to_ship)} bindings"
            )
        for (key, _), rows in zip(to_ship, fetched):
            cache[key] = [dict(r) for r in rows]

    def _drain(self, pending: list[tuple[Row, tuple]],
               cache: dict[tuple, list[Row]]) -> Iterator[Row]:
        for left_row, key in pending:
            yield from self._join(left_row, cache[key])

    def _join(self, left_row: Row, fetched: list[Row]) -> Iterator[Row]:
        for right_row in fetched:
            if _compatible(left_row, right_row):
                yield {**left_row, **right_row}

    def children(self) -> Sequence[Operator]:
        return (self.left,)


class Distinct(Operator):
    """Remove duplicate rows (order-preserving).

    The canonical sorted column order is computed once per batch schema
    (via :meth:`BindingBatch.sorted_pairs`) instead of sorting every
    row's items.
    """

    def __init__(self, child: Operator, name: str = "distinct"):
        super().__init__(name)
        self.child = child

    def _produce_batches(self) -> Iterator[BindingBatch]:
        seen: set[tuple] = set()
        for batch in self.child.batches():
            self.stats.consumed += len(batch)
            pairs = batch.sorted_pairs()
            keep: list[tuple] = []
            for row in batch.rows:
                key = tuple((c, _hashable(row[i])) for c, i in pairs)
                if key not in seen:
                    seen.add(key)
                    keep.append(row)
            if keep:
                yield BindingBatch(batch.columns, keep)

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Sort(Operator):
    """Sort rows by one or more variables."""

    def __init__(self, child: Operator, keys: Sequence[tuple[str, bool]], name: str = "sort"):
        super().__init__(name)
        self.child = child
        self.keys = list(keys)

    def _produce(self) -> Iterator[Row]:
        rows = self.child.rows()
        self.stats.consumed += len(rows)
        for variable, descending in reversed(self.keys):
            rows.sort(key=lambda r: _sort_key(r.get(variable)), reverse=descending)
        yield from rows

    def describe(self) -> str:
        return f"{self.name}({self.keys})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Limit(Operator):
    """Pass through at most ``count`` rows."""

    def __init__(self, child: Operator, count: int, name: str = "limit"):
        super().__init__(name)
        self.child = child
        self.count = count

    def _produce(self) -> Iterator[Row]:
        if self.count <= 0:
            return
        produced = 0
        for row in self.child:
            self.stats.consumed += 1
            yield row
            produced += 1
            if produced >= self.count:
                return

    def describe(self) -> str:
        return f"{self.name}({self.count})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Union(Operator):
    """Concatenate the outputs of several children."""

    def __init__(self, operands: Sequence[Operator], name: str = "union"):
        super().__init__(name)
        self.operands = list(operands)

    def _produce_batches(self) -> Iterator[BindingBatch]:
        for operand in self.operands:
            for batch in operand.batches():
                self.stats.consumed += len(batch)
                yield batch

    def children(self) -> Sequence[Operator]:
        return tuple(self.operands)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute per group."""

    function: str  # count | sum | avg | min | max | collect
    variable: str | None
    output: str


class Aggregate(Operator):
    """Group rows by key variables and compute aggregates per group."""

    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec], name: str = "aggregate"):
        super().__init__(name)
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def _produce(self) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = defaultdict(list)
        for row in self.child:
            self.stats.consumed += 1
            key = tuple(_hashable(row.get(k)) for k in self.group_by)
            groups[key].append(row)
        for key, rows in groups.items():
            out: Row = dict(zip(self.group_by, (rows[0].get(k) for k in self.group_by)))
            for spec in self.aggregates:
                out[spec.output] = _compute(spec, rows)
            yield out

    def describe(self) -> str:
        functions = ", ".join(f"{a.function}({a.variable or '*'})" for a in self.aggregates)
        return f"{self.name}(by={self.group_by}, {functions})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


def _compute(spec: AggregateSpec, rows: list[Row]) -> object:
    function = spec.function.lower()
    if function == "count" and spec.variable is None:
        return len(rows)
    values = [row.get(spec.variable) for row in rows if row.get(spec.variable) is not None]
    if function == "count":
        return len(values)
    if function == "collect":
        return list(values)
    if not values:
        return None
    if function == "sum":
        return sum(values)
    if function == "avg":
        return sum(values) / len(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    raise MixedQueryError(f"unsupported aggregate function {spec.function!r}")


def _schema_call_key(row: Row, key_orders: dict[frozenset, tuple[str, ...]]) -> tuple:
    """Canonical call key of a row; sorted variable order cached per schema."""
    schema = frozenset(row)
    order = key_orders.get(schema)
    if order is None:
        order = tuple(sorted(schema))
        key_orders[schema] = order
    return tuple((k, _hashable(row[k])) for k in order)


def _compatible(left: Row, right: Row) -> bool:
    """True when the two rows agree on every shared variable."""
    for key, value in right.items():
        if key in left and left[key] != value:
            return False
    return True


def _hashable(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _sort_key(value: object) -> tuple:
    if value is None:
        return (2, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value)
    return (1, str(value))
