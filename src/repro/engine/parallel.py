"""Parallel dispatch of independent sub-plans.

The paper's evaluation strategy exploits parallelism "when possible":
sub-queries with no binding dependency between them can be shipped to
their sources concurrently.  :func:`run_parallel` evaluates a batch of
operators in a thread pool (source calls are I/O-like: in the real system
they are network round trips) and returns their materialised outputs in
input order.

Pools are **reused**, not created per stage: each call draws from a
process-wide :class:`WorkPool` (one per role × worker count) unless the
caller supplies its own — the mediator service owns dedicated pools its
query workers share.  The two roles matter for deadlock freedom:
``dispatch`` runs stage operators, whose fetches may fan out dynamic
source calls into the ``tasks`` role; because a task never waits on its
own pool, neither pool can deadlock on nested submission.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.engine.iterators import Operator, Row


@dataclass
class ParallelStats:
    """Timing information for one parallel stage."""

    tasks: int = 0
    wall_clock_seconds: float = 0.0
    per_task_seconds: list[float] = field(default_factory=list)

    @property
    def sequential_seconds(self) -> float:
        """Sum of per-task durations — what a sequential run would cost."""
        return sum(self.per_task_seconds)

    @property
    def speedup(self) -> float:
        """Sequential time divided by wall-clock time (>= 1 when parallelism helps)."""
        if self.wall_clock_seconds <= 0:
            return 1.0
        return max(1.0, self.sequential_seconds / self.wall_clock_seconds)


class WorkPool:
    """A reusable, lazily started thread pool with ordered ``map``.

    The underlying :class:`ThreadPoolExecutor` is created on first use
    and kept alive across calls (idle workers are signalled at
    interpreter exit by ``concurrent.futures``' own atexit hook).
    ``times_created`` counts executor constructions — the pool-reuse
    regression test pins it at one.
    """

    def __init__(self, max_workers: int = 4, name: str = "repro-pool"):
        self.max_workers = max(1, int(max_workers))
        self.name = name
        self.times_created = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix=self.name)
                self.times_created += 1
            return self._executor

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item concurrently, preserving order."""
        items = list(items)
        if self.max_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool's threads (it restarts lazily if used again)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"WorkPool(name={self.name!r}, max_workers={self.max_workers}, "
                f"alive={self._executor is not None})")


#: Process-wide pools, one per (role, worker count); see shared_pool().
_SHARED_POOLS: dict[tuple[str, int], WorkPool] = {}
_SHARED_POOLS_LOCK = threading.Lock()


def shared_pool(role: str, max_workers: int) -> WorkPool:
    """The process-wide :class:`WorkPool` for one role and worker count.

    Repeated calls return the *same* pool, so stage after stage (and
    query after query) reuses warm threads instead of paying a
    ``ThreadPoolExecutor`` construction and teardown per stage.
    """
    key = (role, max(1, int(max_workers)))
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            pool = WorkPool(key[1], name=f"repro-{role}-{key[1]}")
            _SHARED_POOLS[key] = pool
        return pool


def run_parallel(operators: Sequence[Operator], max_workers: int = 4,
                 stats: ParallelStats | None = None,
                 pool: WorkPool | None = None) -> list[list[Row]]:
    """Materialise every operator, possibly concurrently.

    Results are returned in the order of ``operators`` regardless of
    completion order.  With ``max_workers=1`` the execution is sequential,
    which is how the ablation benchmark measures the benefit of parallel
    dispatch.  ``pool`` overrides the process-wide shared pool (the
    mediator service passes its own).
    """
    if stats is not None:
        stats.tasks = len(operators)

    def timed_rows(operator: Operator) -> tuple[list[Row], float]:
        start = time.perf_counter()
        rows = operator.rows()
        return rows, time.perf_counter() - start

    start = time.perf_counter()
    if max_workers <= 1 or len(operators) <= 1:
        outcomes = [timed_rows(op) for op in operators]
    else:
        pool = pool or shared_pool("dispatch", max_workers)
        outcomes = pool.map(timed_rows, operators)
    wall = time.perf_counter() - start
    if stats is not None:
        stats.wall_clock_seconds = wall
        stats.per_task_seconds = [duration for _, duration in outcomes]
    return [rows for rows, _ in outcomes]


def run_tasks(tasks: Sequence[Callable[[], object]], max_workers: int = 4,
              pool: WorkPool | None = None) -> list[object]:
    """Run arbitrary callables, possibly concurrently, preserving order."""
    if max_workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    pool = pool or shared_pool("tasks", max_workers)
    return pool.map(lambda task: task(), tasks)
