"""Parallel dispatch of independent sub-plans.

The paper's evaluation strategy exploits parallelism "when possible":
sub-queries with no binding dependency between them can be shipped to
their sources concurrently.  :func:`run_parallel` evaluates a batch of
operators in a thread pool (source calls are I/O-like: in the real system
they are network round trips) and returns their materialised outputs in
input order.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.iterators import Operator, Row


@dataclass
class ParallelStats:
    """Timing information for one parallel stage."""

    tasks: int = 0
    wall_clock_seconds: float = 0.0
    per_task_seconds: list[float] = field(default_factory=list)

    @property
    def sequential_seconds(self) -> float:
        """Sum of per-task durations — what a sequential run would cost."""
        return sum(self.per_task_seconds)

    @property
    def speedup(self) -> float:
        """Sequential time divided by wall-clock time (>= 1 when parallelism helps)."""
        if self.wall_clock_seconds <= 0:
            return 1.0
        return max(1.0, self.sequential_seconds / self.wall_clock_seconds)


def run_parallel(operators: Sequence[Operator], max_workers: int = 4,
                 stats: ParallelStats | None = None) -> list[list[Row]]:
    """Materialise every operator, possibly concurrently.

    Results are returned in the order of ``operators`` regardless of
    completion order.  With ``max_workers=1`` the execution is sequential,
    which is how the ablation benchmark measures the benefit of parallel
    dispatch.
    """
    if stats is not None:
        stats.tasks = len(operators)

    def timed_rows(operator: Operator) -> tuple[list[Row], float]:
        start = time.perf_counter()
        rows = operator.rows()
        return rows, time.perf_counter() - start

    start = time.perf_counter()
    if max_workers <= 1 or len(operators) <= 1:
        outcomes = [timed_rows(op) for op in operators]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(timed_rows, operators))
    wall = time.perf_counter() - start
    if stats is not None:
        stats.wall_clock_seconds = wall
        stats.per_task_seconds = [duration for _, duration in outcomes]
    return [rows for rows, _ in outcomes]


def run_tasks(tasks: Sequence[Callable[[], object]], max_workers: int = 4) -> list[object]:
    """Run arbitrary callables, possibly concurrently, preserving order."""
    if max_workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(lambda task: task(), tasks))
