"""Parallel dispatch of independent sub-plans.

The paper's evaluation strategy exploits parallelism "when possible":
sub-queries with no binding dependency between them can be shipped to
their sources concurrently.  :func:`run_parallel` evaluates a batch of
operators in a thread pool (source calls are I/O-like: in the real system
they are network round trips) and returns their materialised outputs in
input order.

Pools are **reused**, not created per stage: each call draws from a
process-wide :class:`WorkPool` (one per role × worker count) unless the
caller supplies its own — the mediator service owns dedicated pools its
query workers share.  The two roles matter for deadlock freedom:
``dispatch`` runs stage operators, whose fetches may fan out dynamic
source calls into the ``tasks`` role; because a task never waits on its
own pool, neither pool can deadlock on nested submission.

``WorkPool.map`` runs each item inside a *copy* of the submitting
thread's :mod:`contextvars` context, so the current span (and any other
context variable) propagates into the workers — nested spans opened by
pooled source calls keep their parentage across threads.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.engine.iterators import Operator, Row
from repro.errors import QueryTimeoutError
from repro.obs.metrics import get_registry


@dataclass
class ParallelStats:
    """Timing information for one parallel stage."""

    tasks: int = 0
    wall_clock_seconds: float = 0.0
    per_task_seconds: list[float] = field(default_factory=list)

    @property
    def sequential_seconds(self) -> float:
        """Sum of per-task durations — what a sequential run would cost."""
        return sum(self.per_task_seconds)

    @property
    def speedup(self) -> float:
        """Sequential time divided by wall-clock time (>= 1 when parallelism helps)."""
        if self.wall_clock_seconds <= 0:
            return 1.0
        return max(1.0, self.sequential_seconds / self.wall_clock_seconds)


class WorkPool:
    """A reusable, lazily started thread pool with ordered ``map``.

    The underlying :class:`ThreadPoolExecutor` is created on first use
    and kept alive across calls (idle workers are signalled at
    interpreter exit by ``concurrent.futures``' own atexit hook).
    ``times_created`` counts executor constructions — the pool-reuse
    regression test pins it at one.
    """

    def __init__(self, max_workers: int = 4, name: str = "repro-pool"):
        self.max_workers = max(1, int(max_workers))
        self.name = name
        self.times_created = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._instruments: Optional[tuple] = None

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix=self.name)
                self.times_created += 1
            return self._executor

    def _pool_instruments(self) -> tuple:
        """Instrument handles, cached on the current registry's identity."""
        registry = get_registry()
        cached = self._instruments
        if cached is not None and cached[0] is registry:
            return cached
        cached = (
            registry,
            registry.counter("pool_tasks_total", pool=self.name),
            registry.histogram("pool_task_seconds", pool=self.name),
            registry.gauge("pool_active_tasks", pool=self.name),
        )
        self._instruments = cached
        return cached

    def _run_observed(self, fn: Callable, item, instruments: tuple):
        _, tasks, busy, active = instruments
        active.inc()
        started = time.perf_counter()
        try:
            return fn(item)
        finally:
            active.dec()
            tasks.inc()
            busy.observe(time.perf_counter() - started)

    def map(self, fn: Callable, items: Sequence,
            timeout: Optional[float] = None) -> list:
        """Apply ``fn`` to every item concurrently, preserving order.

        Each item runs in a copy of the caller's contextvars context —
        one copy *per item*, because a single Context object cannot be
        entered by two threads at once.

        ``timeout`` bounds the *total* wait in seconds: when it elapses
        before every item finished, pending items are cancelled and
        :class:`~repro.errors.QueryTimeoutError` is raised — a hung
        item's thread cannot be interrupted, but the caller's deadline
        is honoured instead of waiting forever.  A timeout always takes
        the pool path (the inline shortcut cannot bound a hung call).
        """
        items = list(items)
        instruments = self._pool_instruments()
        if timeout is None and (self.max_workers <= 1 or len(items) <= 1):
            return [self._run_observed(fn, item, instruments) for item in items]
        executor = self._ensure()
        futures = [
            executor.submit(contextvars.copy_context().run,
                            self._run_observed, fn, item, instruments)
            for item in items
        ]
        if timeout is None:
            return [future.result() for future in futures]
        deadline = time.monotonic() + max(0.0, timeout)
        results = []
        try:
            for future in futures:
                remaining = deadline - time.monotonic()
                results.append(future.result(timeout=max(0.0, remaining)))
        except FuturesTimeoutError:
            for future in futures:
                future.cancel()
            raise QueryTimeoutError(
                f"parallel stage exceeded its {timeout:.3f}s deadline "
                f"({len(results)}/{len(futures)} task(s) finished)") from None
        return results

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool's threads (it restarts lazily if used again)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"WorkPool(name={self.name!r}, max_workers={self.max_workers}, "
                f"alive={self._executor is not None})")


#: Process-wide pools, one per (role, worker count); see shared_pool().
_SHARED_POOLS: dict[tuple[str, int], WorkPool] = {}
_SHARED_POOLS_LOCK = threading.Lock()


def shared_pool(role: str, max_workers: int) -> WorkPool:
    """The process-wide :class:`WorkPool` for one role and worker count.

    Repeated calls return the *same* pool, so stage after stage (and
    query after query) reuses warm threads instead of paying a
    ``ThreadPoolExecutor`` construction and teardown per stage.
    """
    key = (role, max(1, int(max_workers)))
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            pool = WorkPool(key[1], name=f"repro-{role}-{key[1]}")
            _SHARED_POOLS[key] = pool
        return pool


def run_parallel(operators: Sequence[Operator], max_workers: int = 4,
                 stats: ParallelStats | None = None,
                 pool: WorkPool | None = None,
                 timeout: Optional[float] = None) -> list[list[Row]]:
    """Materialise every operator, possibly concurrently.

    Results are returned in the order of ``operators`` regardless of
    completion order.  With ``max_workers=1`` the execution is sequential,
    which is how the ablation benchmark measures the benefit of parallel
    dispatch.  ``pool`` overrides the process-wide shared pool (the
    mediator service passes its own).  ``timeout`` bounds the stage's
    total wall-clock wait (see :meth:`WorkPool.map`).
    """
    if stats is not None:
        stats.tasks = len(operators)

    def timed_rows(operator: Operator) -> tuple[list[Row], float]:
        start = time.perf_counter()
        rows = operator.rows()
        return rows, time.perf_counter() - start

    start = time.perf_counter()
    if timeout is None and (max_workers <= 1 or len(operators) <= 1):
        outcomes = [timed_rows(op) for op in operators]
    else:
        pool = pool or shared_pool("dispatch", max_workers)
        outcomes = pool.map(timed_rows, operators, timeout=timeout)
    wall = time.perf_counter() - start
    if stats is not None:
        stats.wall_clock_seconds = wall
        stats.per_task_seconds = [duration for _, duration in outcomes]
    return [rows for rows, _ in outcomes]


def run_tasks(tasks: Sequence[Callable[[], object]], max_workers: int = 4,
              pool: WorkPool | None = None,
              timeout: Optional[float] = None) -> list[object]:
    """Run arbitrary callables, possibly concurrently, preserving order.

    ``timeout`` bounds the total wall-clock wait (see :meth:`WorkPool.map`).
    """
    if timeout is None and (max_workers <= 1 or len(tasks) <= 1):
        return [task() for task in tasks]
    pool = pool or shared_pool("tasks", max_workers)
    return pool.map(lambda task: task(), tasks, timeout=timeout)
