"""Iterator-based execution engine of the mediator.

The Python counterpart of the paper's "in-house iterator-based execution
engine (Java, approx. 10K lines)": Volcano-style operators over binding
tuples plus a parallel dispatcher for independent sub-plans.  The hot
path exchanges columnar :class:`BindingBatch` objects between operators;
dict rows only materialise at the interface boundary.
"""

from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    BatchAccumulator,
    BindingBatch,
    batches_from_rows,
    merge_spec,
)
from repro.engine.iterators import (
    Aggregate,
    AggregateSpec,
    BatchBindJoin,
    BindJoin,
    CallbackScan,
    Distinct,
    Extend,
    HashJoin,
    Limit,
    MaterializedScan,
    NestedLoopJoin,
    Operator,
    OperatorStats,
    Project,
    Row,
    Select,
    Sort,
    Union,
)
from repro.engine.parallel import (
    ParallelStats,
    WorkPool,
    run_parallel,
    run_tasks,
    shared_pool,
)

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BatchAccumulator",
    "BatchBindJoin",
    "BindJoin",
    "BindingBatch",
    "CallbackScan",
    "DEFAULT_BATCH_SIZE",
    "Distinct",
    "Extend",
    "HashJoin",
    "Limit",
    "MaterializedScan",
    "NestedLoopJoin",
    "Operator",
    "OperatorStats",
    "Project",
    "Row",
    "Select",
    "Sort",
    "Union",
    "batches_from_rows",
    "merge_spec",
    "ParallelStats",
    "WorkPool",
    "run_parallel",
    "run_tasks",
    "shared_pool",
]
