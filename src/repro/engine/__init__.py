"""Iterator-based execution engine of the mediator.

The Python counterpart of the paper's "in-house iterator-based execution
engine (Java, approx. 10K lines)": Volcano-style operators over binding
tuples plus a parallel dispatcher for independent sub-plans.
"""

from repro.engine.iterators import (
    Aggregate,
    AggregateSpec,
    BindJoin,
    CallbackScan,
    Distinct,
    Extend,
    HashJoin,
    Limit,
    MaterializedScan,
    NestedLoopJoin,
    Operator,
    OperatorStats,
    Project,
    Row,
    Select,
    Sort,
    Union,
)
from repro.engine.parallel import ParallelStats, run_parallel, run_tasks

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BindJoin",
    "CallbackScan",
    "Distinct",
    "Extend",
    "HashJoin",
    "Limit",
    "MaterializedScan",
    "NestedLoopJoin",
    "Operator",
    "OperatorStats",
    "Project",
    "Row",
    "Select",
    "Sort",
    "Union",
    "ParallelStats",
    "run_parallel",
    "run_tasks",
]
