"""Columnar binding batches for the execution hot path.

The per-row representation of the iterator engine (one ``dict`` per
binding tuple) is convenient but costly: every operator boundary copies
dictionaries and recomputes ``tuple(sorted(...))`` keys per row.  A
:class:`BindingBatch` amortises that work across a group of rows sharing
one schema: the column header is stored once, rows are plain tuples, and
per-schema artefacts (column positions, canonical key order, projection
functions) are computed once per batch instead of once per row.

Batches are *schema-uniform by construction*: :func:`batches_from_rows`
starts a new batch whenever the key set of the incoming row changes, so
the "variable absent from this row" semantics of the dict representation
is preserved exactly (an absent variable is never padded with ``None``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

#: A binding tuple at the mediator level: variable name -> value.
Row = dict[str, object]

#: Default number of rows per batch on the engine hot path.
DEFAULT_BATCH_SIZE = 256


class BindingBatch:
    """A group of binding tuples sharing one column header.

    ``columns`` is the shared header; ``rows`` holds one value tuple per
    binding, aligned with ``columns``.  Derived structures (column
    positions, the canonical sorted key order used for deduplication) are
    built lazily and cached on the batch.
    """

    __slots__ = ("columns", "rows", "_positions", "_sorted_pairs")

    def __init__(self, columns: Sequence[str], rows: list[tuple]):
        self.columns = tuple(columns)
        self.rows = rows
        self._positions: dict[str, int] | None = None
        self._sorted_pairs: tuple[tuple[str, int], ...] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, rows: Sequence[Row]) -> "BindingBatch":
        """Build a batch from dict rows sharing one key set."""
        if not rows:
            return cls((), [])
        columns = tuple(rows[0])
        return cls(columns, [tuple(row[c] for c in columns) for row in rows])

    # ------------------------------------------------------------------
    def positions(self) -> dict[str, int]:
        """Column name -> index in every row tuple (cached)."""
        if self._positions is None:
            self._positions = {c: i for i, c in enumerate(self.columns)}
        return self._positions

    def sorted_pairs(self) -> tuple[tuple[str, int], ...]:
        """``(column, index)`` pairs in sorted column order (cached).

        This is the once-per-batch replacement for the per-row
        ``tuple(sorted(row.items()))`` key computation.
        """
        if self._sorted_pairs is None:
            positions = self.positions()
            self._sorted_pairs = tuple((c, positions[c]) for c in sorted(self.columns))
        return self._sorted_pairs

    def projector(self, columns: Sequence[str]) -> Callable[[tuple], tuple]:
        """A function extracting ``columns`` from a row tuple (``None`` if absent)."""
        positions = self.positions()
        indices = [positions.get(c) for c in columns]
        return lambda row: tuple(None if i is None else row[i] for i in indices)

    def dicts(self) -> Iterator[Row]:
        """Yield one fresh dict per row (the per-row interface boundary)."""
        columns = self.columns
        for row in self.rows:
            yield dict(zip(columns, row))

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BindingBatch(columns={self.columns}, rows={len(self.rows)})"


def batches_from_rows(rows: Iterable[Row],
                      size: int = DEFAULT_BATCH_SIZE) -> Iterator[BindingBatch]:
    """Group an iterable of dict rows into schema-uniform batches.

    Consecutive rows with the same key set land in the same batch (up to
    ``size`` rows); a schema change or a full batch starts a new one, so
    row order is preserved exactly.
    """
    size = max(1, size)
    columns: tuple[str, ...] = ()
    key_set: frozenset | None = None
    buffer: list[tuple] = []
    for row in rows:
        keys = row.keys()
        if key_set is None or keys != key_set or len(buffer) >= size:
            if key_set is not None and buffer:
                yield BindingBatch(columns, buffer)
                buffer = []
            if key_set is None or keys != key_set:
                columns = tuple(row)
                key_set = frozenset(columns)
        buffer.append(tuple(row[c] for c in columns))
    if key_set is not None and buffer:
        yield BindingBatch(columns, buffer)


def merge_spec(left_columns: Sequence[str],
               right_columns: Sequence[str]) -> tuple[tuple[str, ...], list[tuple[bool, int]]]:
    """How to merge a left and a right row tuple into one output tuple.

    Mirrors ``{**left, **right}``: the output header is the left columns
    followed by the right-only columns, and a column present on both
    sides takes the *right* value.  Returns ``(out_columns, picks)`` with
    one ``(take_right, index)`` pick per output column.
    """
    left_columns = tuple(left_columns)
    right_positions = {c: i for i, c in enumerate(right_columns)}
    out_columns = left_columns + tuple(c for c in right_columns if c not in set(left_columns))
    picks: list[tuple[bool, int]] = []
    left_positions = {c: i for i, c in enumerate(left_columns)}
    for column in out_columns:
        if column in right_positions:
            picks.append((True, right_positions[column]))
        else:
            picks.append((False, left_positions[column]))
    return out_columns, picks


class BatchAccumulator:
    """Accumulates output rows grouped by header and emits full batches.

    Join operators produce merged rows whose header depends on the pair
    of input batches; this helper buffers rows per header and yields
    :class:`BindingBatch` objects of at most ``size`` rows.
    """

    def __init__(self, size: int = DEFAULT_BATCH_SIZE):
        self.size = max(1, size)
        self._current: tuple[str, ...] | None = None
        self._rows: list[tuple] = []

    def add(self, columns: tuple[str, ...], row: tuple) -> Iterator[BindingBatch]:
        """Add one row; yields a batch when the header changes or fills up."""
        if columns != self._current or len(self._rows) >= self.size:
            yield from self.flush()
            self._current = columns
        self._rows.append(row)

    def flush(self) -> Iterator[BindingBatch]:
        """Emit whatever is buffered."""
        if self._current is not None and self._rows:
            yield BindingBatch(self._current, self._rows)
        self._rows = []
