"""Standing conjunctive mixed queries: push-based result deltas.

A *standing* CMQ stays registered after its first evaluation; as
ingestion mutates the instance's stores, the registry re-evaluates it
and pushes the **result delta** (rows that appeared, rows that vanished)
to the subscriber's callback — the paper's fact-checking scenario, where
the same watch queries run forever over a live tweet stream.

The refresh loop is *journal-driven*, not polling: every journaled
store wakes the registry through its
:class:`~repro.core.deltas.DeltaJournal` listeners, a short debounce
coalesces write bursts (one ingest batch of N documents is one version
bump and one refresh), and a subscription only re-executes when the
source-version vector it last observed actually moved.  Re-execution
goes through the service's ordinary ``submit`` path, so a standing
refresh enjoys snapshot pinning, admission control — and, crucially,
the result cache: the write that triggered the refresh has usually been
delta-repaired (:mod:`repro.cache.repair`) by the time the refresh
probes it, so refreshing is mostly cache hits, not source calls.

Deltas are **multiset** diffs of the result rows.  Callbacks run on the
service's task pool and are isolated: a raising callback is counted and
logged, never allowed to wedge the refresh loop.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.results import _hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cmq import ConjunctiveMixedQuery
    from repro.core.results import Row
    from repro.service.mediator import MediatorService

logger = logging.getLogger("repro.service.standing")


@dataclass
class StandingDelta:
    """One refresh's observable change, pushed to the subscriber.

    ``added`` / ``removed`` are multiset differences against the
    previous refresh (a row appearing twice more is listed twice);
    ``versions`` is the source-version vector of the refresh that
    produced them and ``sequence`` counts deliveries per subscription
    (starting at 1), so a subscriber can detect missed callbacks.
    """

    added: list["Row"] = field(default_factory=list)
    removed: list["Row"] = field(default_factory=list)
    versions: dict[str, Optional[int]] = field(default_factory=dict)
    sequence: int = 0

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


def _row_key(row: "Row") -> tuple:
    """Hashable multiset fingerprint of one result row."""
    return tuple(sorted((name, _hashable(value)) for name, value in row.items()))


class StandingSubscription:
    """One registered standing CMQ (handle returned by ``register``)."""

    def __init__(self, registry: "StandingQueryRegistry",
                 query: "ConjunctiveMixedQuery",
                 callback: Callable[[StandingDelta], None]):
        self.registry = registry
        self.query = query
        self.callback = callback
        self.active = True
        #: Source-version vector of the last completed refresh.
        self.versions: dict[str, Optional[int]] = {}
        #: Multiset of the current result (fingerprint -> multiplicity)
        #: plus one representative row per fingerprint for delta output.
        self._counts: Counter = Counter()
        self._rows: dict[tuple, "Row"] = {}
        self.refreshes = 0
        self.deliveries = 0
        self.callback_errors = 0
        self.refresh_errors = 0
        self._lock = threading.Lock()

    @property
    def rows(self) -> list["Row"]:
        """The current standing result (multiset, arbitrary order)."""
        with self._lock:
            return [dict(self._rows[key]) for key, count in self._counts.items()
                    for _ in range(count)]

    def cancel(self) -> None:
        """Stop refreshing this subscription (idempotent)."""
        self.active = False
        self.registry._drop(self)

    # -- registry side -------------------------------------------------------
    def _rebase(self, rows: list["Row"],
                versions: dict[str, Optional[int]]) -> Optional[StandingDelta]:
        """Swap in a fresh result; the delta against the old one, if any."""
        counts = Counter()
        fresh: dict[tuple, "Row"] = {}
        for row in rows:
            key = _row_key(row)
            counts[key] += 1
            fresh.setdefault(key, row)
        with self._lock:
            added = [dict(fresh[key])
                     for key, count in counts.items()
                     for _ in range(count - self._counts.get(key, 0))]
            removed = [dict(self._rows[key])
                       for key, count in self._counts.items()
                       for _ in range(count - counts.get(key, 0))]
            self._counts = counts
            self._rows = fresh
            self.versions = dict(versions)
            self.refreshes += 1
            if not added and not removed:
                return None
            self.deliveries += 1
            return StandingDelta(added=added, removed=removed,
                                 versions=dict(versions),
                                 sequence=self.deliveries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StandingSubscription(query={self.query.name!r}, "
                f"active={self.active}, refreshes={self.refreshes})")


class StandingQueryRegistry:
    """Journal-driven refresh loop over the service's subscriptions."""

    #: Seconds the refresher sleeps after a wake-up so one ingest burst
    #: (many notify calls) collapses into one refresh round.
    DEBOUNCE = 0.01
    #: Fallback poll interval: sources without a journal cannot wake the
    #: loop, so it re-checks the version vector at least this often.
    POLL = 0.5

    def __init__(self, service: "MediatorService"):
        self.service = service
        self._subscriptions: list[StandingSubscription] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._listening: list = []  # (journal, listener) pairs to detach
        self._attach_listeners()
        self._thread = threading.Thread(target=self._loop,
                                        name="mediator-standing", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def register(self, query: "ConjunctiveMixedQuery",
                 callback: Callable[[StandingDelta], None]) -> StandingSubscription:
        """Evaluate ``query`` once as the baseline and keep it standing.

        The baseline evaluation is synchronous; the returned
        subscription's :attr:`~StandingSubscription.rows` holds the
        current result.  The callback only ever receives *changes* —
        registration itself delivers nothing.
        """
        subscription = StandingSubscription(self, query, callback)
        versions = self._version_vector()
        result = self.service.execute(query)
        subscription._rebase(result.rows, versions)
        subscription.deliveries = 0  # the baseline is not a delivery
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def stats(self) -> dict[str, object]:
        with self._lock:
            subscriptions = list(self._subscriptions)
        return {
            "subscriptions": len(subscriptions),
            "refreshes": sum(s.refreshes for s in subscriptions),
            "deliveries": sum(s.deliveries for s in subscriptions),
            "callback_errors": sum(s.callback_errors for s in subscriptions),
            "refresh_errors": sum(s.refresh_errors for s in subscriptions),
        }

    def close(self) -> None:
        """Stop the refresh loop and detach every journal listener."""
        self._closed = True
        self._wake.set()
        self._thread.join(timeout=5.0)
        for journal, listener in self._listening:
            journal.unsubscribe(listener)
        self._listening.clear()

    # ------------------------------------------------------------------
    def _drop(self, subscription: StandingSubscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    def _attach_listeners(self) -> None:
        """One journal listener per journaled store wakes the loop."""

        def listener(_entry) -> None:
            self._wake.set()

        instance = self.service.instance
        journals = []
        glue_journal = getattr(instance.graph, "journal", None)
        if glue_journal is not None:
            journals.append(glue_journal)
        for uri in instance.source_uris():
            journal_of = getattr(instance.source(uri), "journal", None)
            journal = journal_of() if callable(journal_of) else None
            if journal is not None:
                journals.append(journal)
        for journal in journals:
            journal.subscribe(listener)
            self._listening.append((journal, listener))

    def _version_vector(self) -> dict[str, Optional[int]]:
        instance = self.service.instance
        vector: dict[str, Optional[int]] = {
            uri: instance.source(uri).version()
            for uri in instance.source_uris()}
        vector["#glue"] = instance.graph.version
        return vector

    def _loop(self) -> None:
        while not self._closed:
            woke = self._wake.wait(timeout=self.POLL)
            if self._closed:
                return
            if woke:
                self._wake.clear()
                time.sleep(self.DEBOUNCE)  # coalesce the burst
            vector = self._version_vector()
            with self._lock:
                due = [s for s in self._subscriptions
                       if s.active and s.versions != vector]
            for subscription in due:
                if self._closed:
                    return
                self._refresh(subscription)

    def _refresh(self, subscription: StandingSubscription) -> None:
        versions = self._version_vector()
        try:
            result = self.service.execute(subscription.query)
        except Exception:  # noqa: BLE001 - the loop must survive one query
            subscription.refresh_errors += 1
            logger.exception("standing refresh of %s failed",
                             subscription.query.name)
            return
        delta = subscription._rebase(result.rows, versions)
        if delta is None:
            return
        self._deliver(subscription, delta)

    def _deliver(self, subscription: StandingSubscription,
                 delta: StandingDelta) -> None:
        """Run the callback on the service's task pool, isolated."""

        def invoke(payload: StandingDelta) -> None:
            subscription.callback(payload)

        try:
            self.service.task_pool.map(invoke, [delta])
        except Exception:  # noqa: BLE001 - callbacks never stop the loop
            subscription.callback_errors += 1
            logger.exception("standing callback of %s raised",
                             subscription.query.name)
