"""The concurrent mediator service: scheduling, admission, deadlines.

A :class:`MediatorService` turns a single-caller
:class:`~repro.core.instance.MixedInstance` into a serving layer that
many clients hit concurrently while feeds keep mutating the sources:

* a **bounded worker pool** drains a FIFO-with-priority queue (lower
  ``priority`` value runs first; ties in submission order);
* **admission control** rejects work past ``max_queue_depth`` queued /
  ``max_in_flight`` total tickets with :class:`AdmissionError`, so an
  overloaded mediator fails fast instead of accumulating latency;
* every query **pins a snapshot vector** (:func:`repro.service.snapshots
  .pin_instance`) before planning, so its whole plan observes one
  consistent version of every store — updates land between queries,
  never inside one;
* **deadlines and cancellation** are enforced cooperatively: expired or
  cancelled tickets are dropped at dequeue, and a running executor
  checks between stages;
* all workers share the instance's :class:`MediatorCache` and
  :class:`StatisticsCatalog` (both thread-safe), plus two service-owned
  :class:`~repro.engine.parallel.WorkPool`\\ s for intra-query stage and
  source-call parallelism — no per-stage pool churn.
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.core.planner import PlannerOptions
from repro.core.results import MixedResult
from repro.engine.parallel import WorkPool
from repro.errors import (
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import SpanTracer, attach, detach
from repro.service.mqo import MQOCoordinator, QueryGroup
from repro.service.snapshots import PinnedCatalog, pin_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cmq import ConjunctiveMixedQuery
    from repro.core.instance import MixedInstance
    from repro.service.standing import StandingSubscription

logger = logging.getLogger("repro.service.mediator")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`MediatorService`.

    ``workers``
        Query workers: how many CMQs evaluate concurrently.
    ``max_queue_depth`` / ``max_in_flight``
        Admission control: at most ``max_queue_depth`` tickets waiting,
        at most ``max_in_flight`` tickets queued + running overall.
    ``default_deadline``
        Seconds granted to a query when ``submit`` names none
        (``None`` = unlimited).
    ``default_priority``
        Priority assigned when ``submit`` names none (lower runs first).
    ``dispatch_workers`` / ``task_workers``
        Sizes of the two shared intra-query pools (parallel stages and
        fan-out source calls, see :mod:`repro.engine.parallel`).
    ``tracing``
        Collect a per-ticket span tree (``query:<name>`` root, queue
        wait, planning, execution stages, source calls) exposed as
        :attr:`QueryTicket.span_tree`.  Turning it off skips all span
        allocation for served queries.
    ``mqo``
        Multi-query optimization: a worker dequeuing a ticket scoops up
        to ``mqo_group_size - 1`` further pending tickets into a group
        sharing ONE pinned snapshot vector, and every executor's cache
        misses flow through the service's fusion bus
        (:class:`~repro.service.mqo.MQOCoordinator`) — identical
        in-flight sub-queries evaluate once (single-flight) and
        compatible bind-join probes from different queries fuse into
        one batched source call.  ``mqo_fusion_window`` is how long a
        batched call is held open for riders (seconds; only while more
        than one ticket is in flight).
    """

    workers: int = 4
    max_queue_depth: int = 64
    max_in_flight: int = 128
    default_deadline: Optional[float] = None
    default_priority: int = 10
    dispatch_workers: int = 4
    task_workers: int = 4
    tracing: bool = True
    mqo: bool = True
    mqo_group_size: int = 8
    mqo_fusion_window: float = 0.002


#: Ticket life cycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMED_OUT = "timed_out"


class QueryTicket:
    """A submitted query: future-like handle plus its pinned snapshot."""

    def __init__(self, query: "ConjunctiveMixedQuery", priority: int,
                 deadline: Optional[float], options: PlannerOptions | None,
                 distinct: bool, limit: int | None):
        self.query = query
        self.priority = priority
        #: Absolute monotonic deadline (``time.monotonic()`` scale), or None.
        self.deadline = deadline
        self.options = options
        self.distinct = distinct
        self.limit = limit
        self.status = PENDING
        self.result_value: Optional[MixedResult] = None
        self.error: Optional[BaseException] = None
        #: The snapshot vector the query pinned (set when it starts).
        self.pinned: Optional[PinnedCatalog] = None
        #: The admission group this ticket was batched into (None when
        #: MQO is off or no compatible tickets were pending); members
        #: share the group's pinned snapshot vector.
        self.group: Optional[QueryGroup] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Root span of the ticket's trace (set at submit when the
        #: service traces; its tracer is exposed as :attr:`span_tree`).
        self.root_span = None
        #: The queue-wait span (child of the root; ended at dequeue).
        self.queue_span = None
        self._cancel_requested = False
        self._finished = threading.Event()
        self._lock = threading.Lock()

    # -- client side ---------------------------------------------------------
    @property
    def versions(self) -> dict[str, Optional[int]]:
        """The pinned (source → version) vector (empty before it runs)."""
        return dict(self.pinned.versions) if self.pinned is not None else {}

    def cancel(self) -> bool:
        """Request cancellation; True unless the ticket already finished."""
        with self._lock:
            if self._finished.is_set():
                return False
            self._cancel_requested = True
            return True

    def done(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ticket finishes; True when it did."""
        return self._finished.wait(timeout)

    def result(self, timeout: float | None = None) -> MixedResult:
        """The query's :class:`MixedResult` (blocking; re-raises failures)."""
        if not self._finished.wait(timeout):
            raise ServiceError(
                f"query {self.query.name!r} did not finish within {timeout}s")
        if self.error is not None:
            raise self.error
        assert self.result_value is not None
        return self.result_value

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-finish wall seconds (None while unfinished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def span_tree(self):
        """The ticket's :class:`~repro.obs.spans.SpanTracer` (None when
        the service was created with ``tracing=False``)."""
        return self.root_span.tracer if self.root_span is not None else None

    def explain_analyze(self, timeout: float | None = None):
        """EXPLAIN ANALYZE report for the served query (blocking).

        Queue wait, planning and execution phases come from the ticket's
        span tree; re-raises the query's failure like :meth:`result`.
        """
        from repro.obs.explain import explain_analyze

        result = self.result(timeout=timeout)
        if (result.trace is not None and result.trace.spans is None
                and self.span_tree is not None):
            result.trace.spans = self.span_tree
        report = explain_analyze(result)
        report.query = self.query.name
        return report

    # -- service side --------------------------------------------------------
    def _cancel_check(self) -> None:
        """Raised-based cooperative abort, called between executor stages."""
        if self._cancel_requested:
            raise QueryCancelledError(f"query {self.query.name!r} was cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(f"query {self.query.name!r} missed its deadline")

    def _remaining(self) -> Optional[float]:
        """Seconds left before the deadline (None when unbounded).

        Handed to the executor as its ``deadline`` callable so every
        parallel dispatch wait is bounded by the ticket's budget — a hung
        source times the stage out mid-wait instead of after it.
        """
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def _finish(self, status: str, result: MixedResult | None = None,
                error: BaseException | None = None) -> None:
        with self._lock:
            self.status = status
            self.result_value = result
            self.error = error
            self.finished_at = time.monotonic()
            self._finished.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"QueryTicket(query={self.query.name!r}, status={self.status}, "
                f"priority={self.priority})")


@dataclass(order=True)
class _QueueItem:
    priority: int
    sequence: int
    ticket: Optional[QueryTicket] = field(compare=False, default=None)


#: Sentinel priority: processed after every real ticket (graceful drain).
_SHUTDOWN_PRIORITY = 2 ** 31


class MediatorService:
    """Snapshot-isolated, admission-controlled concurrent query serving."""

    def __init__(self, instance: "MixedInstance",
                 config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.instance = instance
        self.config = config or ServiceConfig()
        #: The registry the service records into (the process-global one
        #: unless a dedicated registry is handed in).
        self.metrics = metrics if metrics is not None else get_registry()
        self._queue: queue.PriorityQueue[_QueueItem] = queue.PriorityQueue()
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._queued = 0
        self._in_flight = 0
        self._stopping = False
        self.counters = {"submitted": 0, "completed": 0, "failed": 0,
                         "cancelled": 0, "timed_out": 0, "rejected": 0}
        self._queue_depth_gauge = self.metrics.gauge("service_queue_depth")
        self._in_flight_gauge = self.metrics.gauge("service_in_flight")
        self._latency_histogram = self.metrics.histogram("service_latency_seconds")
        self._queue_wait_histogram = self.metrics.histogram(
            "service_queue_wait_seconds")
        self._deadline_miss_counter = self.metrics.counter(
            "service_deadline_misses_total")
        self._status_counters = {
            "submitted": self.metrics.counter("service_submitted_total"),
            "rejected": self.metrics.counter("service_rejected_total"),
            "completed": self.metrics.counter("service_completed_total"),
            "failed": self.metrics.counter("service_failed_total"),
            "cancelled": self.metrics.counter("service_cancelled_total"),
            "timed_out": self.metrics.counter("service_timed_out_total"),
        }
        if getattr(instance, "cache", None) is not None:
            instance.cache.register_metrics(self.metrics)
        #: The multi-query fusion bus every executor's misses flow
        #: through (None when ``config.mqo`` is off).
        self.mqo = (MQOCoordinator(window=self.config.mqo_fusion_window)
                    if self.config.mqo else None)
        self.dispatch_pool = WorkPool(self.config.dispatch_workers,
                                      name="mediator-dispatch")
        self.task_pool = WorkPool(self.config.task_workers,
                                  name="mediator-tasks")
        #: Standing-query registry, created on first ``register_standing``
        #: (it owns a refresh thread and journal listeners — services
        #: that never register a standing CMQ pay nothing).
        self._standing = None
        self._standing_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"mediator-worker-{i}", daemon=True)
            for i in range(max(1, self.config.workers))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, query: "ConjunctiveMixedQuery | str",
               priority: int | None = None, deadline: float | None = None,
               options: PlannerOptions | None = None, distinct: bool = True,
               limit: int | None = None) -> QueryTicket:
        """Enqueue one CMQ (object or textual syntax); returns its ticket.

        ``deadline`` is in relative seconds from now.  Raises
        :class:`AdmissionError` when the queue or in-flight budget is
        exhausted, :class:`ServiceError` after :meth:`shutdown`.
        """
        if isinstance(query, str):
            query = self.instance.parse(query)
        relative = deadline if deadline is not None else self.config.default_deadline
        absolute = time.monotonic() + relative if relative is not None else None
        ticket = QueryTicket(
            query,
            priority=self.config.default_priority if priority is None else priority,
            deadline=absolute, options=options, distinct=distinct, limit=limit)
        with self._lock:
            if self._stopping:
                raise ServiceError("the mediator service is shut down")
            if (self._queued >= self.config.max_queue_depth
                    or self._in_flight >= self.config.max_in_flight):
                self.counters["rejected"] += 1
                self._status_counters["rejected"].inc()
                logger.warning(
                    "admission refused for %s: %d queued (max %d), "
                    "%d in flight (max %d)", query.name, self._queued,
                    self.config.max_queue_depth, self._in_flight,
                    self.config.max_in_flight)
                raise AdmissionError(
                    f"admission refused: {self._queued} queued "
                    f"(max {self.config.max_queue_depth}), {self._in_flight} "
                    f"in flight (max {self.config.max_in_flight})")
            self._queued += 1
            self._in_flight += 1
            self.counters["submitted"] += 1
            self._status_counters["submitted"].inc()
            self._queue_depth_gauge.set(self._queued)
            self._in_flight_gauge.set(self._in_flight)
            if self.config.tracing:
                tracer = SpanTracer(f"query:{query.name}")
                ticket.root_span = tracer.start(f"query:{query.name}",
                                                priority=ticket.priority)
                ticket.queue_span = tracer.start("queue",
                                                 parent=ticket.root_span)
            # Enqueue under the lock: a shutdown() serialised after this
            # cannot have drained the workers yet, so the ticket is
            # guaranteed a worker (or an explicit cancel), never orphaned.
            self._queue.put(_QueueItem(ticket.priority, next(self._sequence), ticket))
        return ticket

    def execute(self, query: "ConjunctiveMixedQuery | str",
                priority: int | None = None, deadline: float | None = None,
                options: PlannerOptions | None = None, distinct: bool = True,
                limit: int | None = None,
                timeout: float | None = None) -> MixedResult:
        """Submit and block for the result (convenience wrapper)."""
        ticket = self.submit(query, priority=priority, deadline=deadline,
                             options=options, distinct=distinct, limit=limit)
        return ticket.result(timeout=timeout)

    def register_standing(self, query: "ConjunctiveMixedQuery | str",
                          callback) -> "StandingSubscription":
        """Keep ``query`` evaluated as the stores mutate.

        The query is evaluated once, synchronously, as the baseline;
        afterwards every ingest that moves a source version triggers a
        journal-driven re-evaluation, and ``callback`` receives a
        :class:`~repro.service.standing.StandingDelta` for each refresh
        whose result actually changed.  Returns the subscription handle
        (``.rows`` is the current result, ``.cancel()`` stops it).
        """
        from repro.service.standing import StandingQueryRegistry

        if isinstance(query, str):
            query = self.instance.parse(query)
        with self._standing_lock:
            if self._standing is None:
                self._standing = StandingQueryRegistry(self)
            registry = self._standing
        return registry.register(query, callback)

    def statistics(self) -> dict[str, object]:
        """Service counters plus current queue state."""
        with self._lock:
            stats: dict[str, object] = dict(self.counters)
            stats["queued"] = self._queued
            stats["in_flight"] = self._in_flight
            stats["workers"] = len(self._workers)
        return stats

    def stats(self) -> dict[str, object]:
        """Service health snapshot backed by the metrics registry.

        Extends :meth:`statistics` with the latency and queue-wait
        histograms' summaries (count / mean / p50 / p95 / p99 / max) and
        the deadline-miss counter.
        """
        out = self.statistics()
        out["deadline_misses"] = self._deadline_miss_counter.value
        out["latency_seconds"] = self._latency_histogram.summary()
        out["queue_wait_seconds"] = self._queue_wait_histogram.summary()
        # The JSON accelerator instruments the process-global registry
        # (stores are shared across services, unlike the per-service
        # queue/latency instruments above).
        accel_registry = get_registry()
        out["json_accel"] = {
            "builds": accel_registry.counter("json.accel.builds").value,
            "probe_rows": accel_registry.counter("json.accel.probe_rows").value,
        }
        # Remote wrappers expose their resilience state (circuit-breaker
        # state, retry/hedge counters, latency p95) — surface it per URI
        # so operators see *which* source is tripping from one snapshot.
        remote: dict[str, object] = {}
        for uri in self.instance.source_uris():
            source = self.instance.source(uri)
            if getattr(source, "cost_kind", None) == "remote":
                stats_fn = getattr(source, "stats", None)
                if callable(stats_fn):
                    remote[uri] = stats_fn()
        if remote:
            out["remote"] = remote
        if self.mqo is not None:
            out["mqo"] = self.mqo.stats()
        if getattr(self.instance, "cache", None) is not None:
            # The streaming ingest story in one block: how many misses
            # were answered by delta-join repair instead of re-dispatch.
            out["repair"] = self.instance.cache.repair.stats.as_dict()
        with self._standing_lock:
            standing = self._standing
        if standing is not None:
            out["standing"] = standing.stats()
        return out

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting queries and wind the workers down.

        With ``cancel_pending`` queued tickets are cancelled instead of
        drained.  ``wait`` joins the workers (queued work — unless
        cancelled — still completes: the shutdown sentinels sort after
        every real ticket).
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        with self._standing_lock:
            standing = self._standing
            self._standing = None
        if standing is not None:
            standing.close()
        if cancel_pending:
            # Workers still drain the queue; the cancel flag makes each
            # dequeued ticket finish immediately as cancelled.
            for item in list(self._queue.queue):
                if item.ticket is not None:
                    item.ticket.cancel()
        for _ in self._workers:
            self._queue.put(_QueueItem(_SHUTDOWN_PRIORITY, next(self._sequence)))
        if wait:
            for worker in self._workers:
                worker.join()
        self.dispatch_pool.shutdown(wait=wait)
        self.task_pool.shutdown(wait=wait)

    def __enter__(self) -> "MediatorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True, cancel_pending=exc_info[0] is not None)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item.ticket is None:
                return
            with self._lock:
                self._queued -= 1
                self._queue_depth_gauge.set(self._queued)
            if self.mqo is not None and item.ticket.group is None:
                self._form_group(item.ticket)
            self._run_ticket(item.ticket)

    def _form_group(self, ticket: QueryTicket) -> None:
        """Group admission: batch pending tickets under ONE snapshot.

        The dequeuing worker scoops up to ``mqo_group_size - 1`` further
        pending tickets, pins one snapshot vector for the whole group
        and puts the scooped members straight back (same priority and
        sequence, so their order is preserved) — they only gained the
        group tag, other workers still run them in parallel.  Sharing
        the pinned versions makes every member's canonical sub-query
        keys line up exactly, so the fusion bus can share work across
        the group without ever mixing snapshot versions.
        """
        members: list[_QueueItem] = []
        while len(members) + 1 < self.config.mqo_group_size:
            try:
                extra = self._queue.get_nowait()
            except queue.Empty:
                break
            if extra.ticket is None:
                # A shutdown sentinel sorts after every real ticket —
                # nothing worth scooping can be behind it.  Put it back
                # for the workers and stop.
                self._queue.put(extra)
                break
            members.append(extra)
        group = QueryGroup(pinned=pin_instance(self.instance),
                           size=len(members) + 1)
        ticket.group = group
        for item in members:
            item.ticket.group = group
            # Not a new submission: ``_queued`` was never decremented
            # for a scooped item, so re-enqueueing keeps the gauge
            # balanced (it is decremented when a worker dequeues it).
            self._queue.put(item)
        if members:
            self.mqo.group_formed(group.size)

    def _run_ticket(self, ticket: QueryTicket) -> None:
        if ticket.queue_span is not None:
            ticket.queue_span.end()
        self._queue_wait_histogram.observe(time.monotonic() - ticket.submitted_at)
        token = attach(ticket.root_span) if ticket.root_span is not None else None
        try:
            try:
                ticket._cancel_check()
            except QueryCancelledError as exc:
                self._account(CANCELLED, ticket)
                ticket._finish(CANCELLED, error=exc)
                return
            except QueryTimeoutError as exc:
                self._account(TIMED_OUT, ticket)
                ticket._finish(TIMED_OUT, error=exc)
                return
            ticket.status = RUNNING
            ticket.started_at = time.monotonic()
            # The group's shared snapshot vector when batch admission
            # grouped this ticket; otherwise pin *at execution start*,
            # reflecting the freshest state available when it got a
            # worker.
            if ticket.group is not None:
                ticket.pinned = ticket.group.pinned
            else:
                ticket.pinned = pin_instance(self.instance)
            executor = ticket.pinned.executor(
                self.instance, options=ticket.options,
                max_workers=self.config.dispatch_workers,
                cancel_check=ticket._cancel_check,
                dispatch_pool=self.dispatch_pool, task_pool=self.task_pool,
                metrics=self.metrics, deadline=ticket._remaining,
                mqo=self.mqo)
            if self.mqo is not None:
                self.mqo.ticket_started()
            try:
                result = executor.execute(ticket.query, distinct=ticket.distinct,
                                          limit=ticket.limit)
            except QueryCancelledError as exc:
                self._account(CANCELLED, ticket)
                ticket._finish(CANCELLED, error=exc)
            except QueryTimeoutError as exc:
                self._account(TIMED_OUT, ticket)
                ticket._finish(TIMED_OUT, error=exc)
            except BaseException as exc:  # noqa: BLE001 - reported via ticket
                self._account(FAILED, ticket)
                ticket._finish(FAILED, error=exc)
            else:
                self._account(DONE, ticket)
                ticket._finish(DONE, result=result)
            finally:
                if self.mqo is not None:
                    self.mqo.ticket_finished()
        finally:
            if token is not None:
                detach(token)
            if ticket.root_span is not None:
                ticket.root_span.end(status=ticket.status)
            if ticket.latency is not None:
                self._latency_histogram.observe(ticket.latency)
            with self._lock:
                self._in_flight -= 1
                self._in_flight_gauge.set(self._in_flight)

    def _account(self, status: str, ticket: QueryTicket) -> None:
        key = {DONE: "completed", FAILED: "failed", CANCELLED: "cancelled",
               TIMED_OUT: "timed_out"}[status]
        if status == TIMED_OUT:
            self._deadline_miss_counter.inc()
            logger.warning("query %s missed its deadline",
                           ticket.query.name)
        with self._lock:
            self.counters[key] += 1
        self._status_counters[key].inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MediatorService(instance={self.instance.name!r}, "
                f"workers={len(self._workers)}, stats={self.statistics()})")
