"""Multi-query optimization: plan the queue, not the query.

The mediator's repeated fact-checking workload (the paper's scenario:
the same CMQs re-run as tweets stream in) makes concurrent queries
largely *overlapping* — most of the sub-queries an admitted ticket is
about to ship are also being shipped, right now, by another in-flight
ticket.  Following the GLADE MQO approach (PAPERS.md: detect shared
sub-computations across an admitted batch, evaluate once, fan out),
this module adds two cooperating mechanisms:

**Group admission** (:class:`QueryGroup`, formed by the service's
worker loop): a worker that dequeues a ticket scoops compatible pending
tickets into a group and pins ONE snapshot vector for all of them.
Members still run in parallel on separate workers, but because they
share the pinned versions, their canonical cache keys coincide exactly
— the precondition for sharing work without ever mixing snapshot
versions.

**The fusion bus** (:class:`MQOCoordinator`): every cache *miss* of
every executor flows through :meth:`MQOCoordinator.fuse`, keyed by
``(source URI, identity token, pinned version, canonical query,
binding schema)``.  Two things can happen to a probe:

* *single-flight* — an identical probe (same canonical binding) is
  already in flight: the caller waits on the carrier slot's future and
  receives the rows without any source call (``shared_subqueries``);
* *probe fusion* — a compatible but distinct probe finds a slot whose
  leader has not dispatched yet: it rides along, and the leader ships
  the union in ONE batched source call (``fused_probes``).

A slot's leader executes the fused call on its own worker thread
(straight-line, no nested pool submits), so riders' waits always bottom
out at a thread that is making progress; the rider wait is additionally
bounded, falling back to self-evaluation if a carrier ever stalls.
Results cross between differently-renamed queries in canonical form —
the same renaming machinery the result cache already trusts
(:mod:`repro.cache.keys`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.sources import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.snapshots import PinnedCatalog

#: One probe on the bus: (full canonical cache key, canonical binding).
Probe = tuple[tuple, Row]
#: A slot leader's evaluator: union probes -> canonical rows per probe.
Runner = Callable[[list[Probe]], list[list[Row]]]


@dataclass
class QueryGroup:
    """A batch of tickets admitted together under ONE pinned snapshot.

    Sharing the snapshot vector is what makes cross-ticket sharing
    sound: all members key their sub-queries under identical source
    versions, so single-flight fan-out can never hand a ticket rows
    pinned at a different version than its own.
    """

    pinned: "PinnedCatalog"
    size: int


class _FusionSlot:
    """One in-flight (or about-to-fly) fused source call.

    ``probes`` accumulates the union while ``open``; the leader closes
    the slot, ships the union, fills ``results`` (keyed by full cache
    key) and sets ``done``.  Identical probes *ride* the slot for as
    long as it is live — also after close, during the source call.
    """

    __slots__ = ("key", "open", "done", "full", "probes", "results",
                 "error", "participants")

    def __init__(self, key: tuple):
        self.key = key
        self.open = False
        self.done = threading.Event()
        #: Set when the slot reaches capacity — wakes a leader waiting
        #: out its fusion window early.
        self.full = threading.Event()
        self.probes: dict[tuple, Row] = {}
        self.results: dict[tuple, list[Row]] = {}
        self.error: Optional[BaseException] = None
        #: Number of distinct fuse() calls contributing probes.
        self.participants = 1


class MQOCoordinator:
    """The shared fusion bus of one :class:`MediatorService`.

    ``window`` is how long a batched slot leader holds the call open
    for riders (seconds; only when more than one ticket is in flight —
    a lone query never pays the wait).  ``max_fused`` caps the union
    size of one fused call; ``rider_timeout`` bounds how long a rider
    waits on a carrier before falling back to evaluating its own
    probes.
    """

    def __init__(self, window: float = 0.002, max_fused: int = 64,
                 rider_timeout: float = 30.0):
        self.window = window
        self.max_fused = max(1, max_fused)
        self.rider_timeout = rider_timeout
        self._lock = threading.Lock()
        self._slots: dict[tuple, list[_FusionSlot]] = {}
        self._active = 0
        self._totals = {
            "shared_subqueries": 0,
            "fused_probes": 0,
            "fused_calls": 0,
            "source_calls_saved": 0,
            "groups": 0,
            "grouped_tickets": 0,
        }

    # ------------------------------------------------------------------
    # Ticket / group lifecycle (driven by the mediator's worker loop)
    # ------------------------------------------------------------------
    def ticket_started(self) -> None:
        with self._lock:
            self._active += 1

    def ticket_finished(self) -> None:
        with self._lock:
            self._active -= 1

    @property
    def active(self) -> int:
        """Tickets currently executing through this bus."""
        with self._lock:
            return self._active

    def group_formed(self, size: int) -> None:
        with self._lock:
            self._totals["groups"] += 1
            self._totals["grouped_tickets"] += size

    def stats(self) -> dict[str, int]:
        """Cumulative sharing counters (``MediatorService.stats()["mqo"]``)."""
        with self._lock:
            out = dict(self._totals)
            out["active"] = self._active
            return out

    # ------------------------------------------------------------------
    # The bus
    # ------------------------------------------------------------------
    def fuse(self, fusion_key: tuple, probes: list[Probe], runner: Runner,
             batched: bool = False) -> tuple[list[list[Row]], int, int]:
        """Evaluate ``probes`` through the bus; ``(rows_per_probe, shared,
        fused)``.

        All probes of one call share a canonical query and binding
        schema (that is what ``fusion_key`` says).  ``runner`` is only
        invoked if this caller ends up leading a slot (or recovering
        from a failed carrier); it must answer the probe list it is
        given with one canonical row list per probe.

        ``shared`` counts probes answered by an identical in-flight
        probe (single-flight), ``fused`` probes answered by riding a
        compatible call another query led.  The caller's own led probes
        count as neither — it did that work itself.
        """
        resolvers: list[tuple[object, tuple]] = []
        ride_kind: dict[int, str] = {}
        ride_slots: list[_FusionSlot] = []
        joined: list[_FusionSlot] = []
        lead: Optional[_FusionSlot] = None
        lead_probes: dict[tuple, Row] = {}
        with self._lock:
            slots = self._slots.setdefault(fusion_key, [])
            open_slot = next((s for s in slots
                              if s.open and len(s.probes) < self.max_fused), None)
            for position, (full_key, binding) in enumerate(probes):
                if full_key in lead_probes:
                    # Duplicate within our own call: one evaluation.
                    resolvers.append(("lead", full_key))
                    continue
                carrier = next((s for s in slots if not s.done.is_set()
                                and full_key in s.probes), None)
                if carrier is not None:
                    resolvers.append((carrier, full_key))
                    if carrier not in ride_slots:
                        ride_slots.append(carrier)
                    ride_kind[position] = "shared"
                    continue
                if open_slot is not None:
                    open_slot.probes[full_key] = binding
                    resolvers.append((open_slot, full_key))
                    if open_slot not in ride_slots:
                        ride_slots.append(open_slot)
                    if open_slot not in joined:
                        joined.append(open_slot)
                    ride_kind[position] = "fused"
                    if len(open_slot.probes) >= self.max_fused:
                        open_slot.open = False
                        open_slot.full.set()
                        open_slot = None
                    continue
                lead_probes[full_key] = binding
                resolvers.append(("lead", full_key))
            for slot in joined:
                slot.participants += 1
            if lead_probes:
                lead = _FusionSlot(fusion_key)
                lead.probes.update(lead_probes)
                # Hold the call open for riders only when it is batched
                # (the wrapper can push a union down) and someone exists
                # to fuse with; a lone query never pays the window.
                lead.open = bool(batched) and self.window > 0 and self._active > 1
                slots.append(lead)

        if lead is not None:
            self._lead(lead, runner)
        for slot in ride_slots:
            if not slot.done.wait(self.rider_timeout):
                # Carrier stalled (hung source call on another ticket):
                # stop waiting — the fallback below re-evaluates our
                # probes on our own thread/budget.
                continue

        results: list[Optional[list[Row]]] = []
        shared = fused = 0
        fallback: dict[tuple, Row] = {}
        for position, (owner, full_key) in enumerate(resolvers):
            if owner == "lead":
                assert lead is not None
                if lead.error is not None:
                    raise lead.error
                results.append(lead.results[full_key])
                continue
            rows = (owner.results.get(full_key)
                    if owner.done.is_set() and owner.error is None else None)
            if rows is None:
                fallback[full_key] = probes[position][1]
                results.append(None)
                continue
            results.append(rows)
            if ride_kind.get(position) == "shared":
                shared += 1
            else:
                fused += 1
        if fallback:
            recovered = runner(list(fallback.items()))
            by_key = dict(zip(fallback, recovered))
            results = [by_key[resolvers[i][1]] if rows is None else rows
                       for i, rows in enumerate(results)]
        with self._lock:
            self._totals["shared_subqueries"] += shared
            self._totals["fused_probes"] += fused
            if lead is None and not fallback:
                self._totals["source_calls_saved"] += 1
        return results, shared, fused  # type: ignore[return-value]

    def _lead(self, slot: _FusionSlot, runner: Runner) -> None:
        """Run one slot's fused call as its leader.

        Straight-line on the calling thread: wait out the fusion
        window (if open), close the slot, ship the union, publish the
        results, signal ``done`` — unconditionally, so riders can never
        wait on a slot that silently died.
        """
        if slot.open:
            slot.full.wait(self.window)
        with self._lock:
            slot.open = False
            union = list(slot.probes.items())
        try:
            fetched = runner(union)
            slot.results = {key: rows
                            for (key, _), rows in zip(union, fetched)}
        except BaseException as exc:  # noqa: BLE001 - published to riders
            slot.error = exc
        finally:
            with self._lock:
                bucket = self._slots.get(slot.key)
                if bucket is not None:
                    try:
                        bucket.remove(slot)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    if not bucket:
                        del self._slots[slot.key]
                if slot.participants > 1 and slot.error is None:
                    self._totals["fused_calls"] += 1
            slot.done.set()
