"""Concurrent mediator serving: snapshot isolation + a query scheduler.

Public entry points:

* :class:`MediatorService` — bounded worker pool, FIFO-with-priority
  scheduling, admission control, per-query deadlines/cancellation;
* :class:`ServiceConfig` — the scheduler's knobs;
* :class:`QueryTicket` — the future-like handle ``submit`` returns;
* :class:`PinnedCatalog` / :func:`pin_instance` — the snapshot vector a
  query observes (also reachable as ``MixedInstance.pin()``);
* :class:`MQOCoordinator` / :class:`QueryGroup` — the multi-query
  fusion bus (single-flight shared sub-plans, cross-query probe
  fusion) and the batch-admission groups feeding it.
"""

from repro.errors import (
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
)
from repro.service.mediator import (
    CANCELLED,
    DONE,
    FAILED,
    MediatorService,
    PENDING,
    QueryTicket,
    RUNNING,
    ServiceConfig,
    TIMED_OUT,
)
from repro.service.mqo import MQOCoordinator, QueryGroup
from repro.service.snapshots import PinnedCatalog, pin_instance
from repro.service.standing import (
    StandingDelta,
    StandingQueryRegistry,
    StandingSubscription,
)

__all__ = [
    "AdmissionError",
    "CANCELLED",
    "DONE",
    "FAILED",
    "MQOCoordinator",
    "MediatorService",
    "PENDING",
    "PinnedCatalog",
    "QueryCancelledError",
    "QueryGroup",
    "QueryTicket",
    "QueryTimeoutError",
    "RUNNING",
    "ServiceConfig",
    "ServiceError",
    "StandingDelta",
    "StandingQueryRegistry",
    "StandingSubscription",
    "TIMED_OUT",
    "pin_instance",
]
