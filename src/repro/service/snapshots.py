"""Snapshot pinning: one consistent ``(source, version)`` vector per query.

The mediator's isolation unit is the :class:`PinnedCatalog`: for every
registered source (the glue graph included) it holds a read-only wrapper
over a store snapshot, taken under the store's reader-writer lock and
memoised per version (:meth:`repro.core.sources.DataSource.pin`).  A
query planned and executed against a pinned catalog observes exactly the
pinned state for its whole plan — writers keep mutating the live stores,
later queries pin later versions, but no query ever sees a half-applied
delta.  Because pinned wrappers share their live wrapper's cache token
and version, the cross-query result cache remains shared (and sound: the
version in the key now really describes immutable content).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.core.cmq import GLUE_SOURCE
from repro.core.executor import MixedQueryExecutor
from repro.core.planner import PlannerOptions
from repro.core.sources import DataSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import MixedInstance


@dataclass
class PinnedCatalog:
    """Read-only wrappers over store snapshots, plus their version vector."""

    sources: dict[str, DataSource]
    glue: DataSource
    #: uri -> pinned version (GLUE_SOURCE key for the glue graph);
    #: ``None`` for wrappers without version support (served live).
    versions: dict[str, Optional[int]] = field(default_factory=dict)

    def executor(self, instance: "MixedInstance",
                 options: PlannerOptions | None = None, max_workers: int = 4,
                 cache: bool = True, cancel_check=None,
                 dispatch_pool=None, task_pool=None,
                 metrics=None, deadline=None, mqo=None) -> MixedQueryExecutor:
        """An executor whose every dispatch hits the pinned snapshots.

        ``instance`` supplies the shared mediator cache and statistics
        catalog (``cache=False`` detaches this executor from the shared
        result/plan caches — the equivalence harness uses that to verify
        service answers independently).  ``metrics`` is the registry the
        executor records into (the service hands its own down);
        ``deadline`` is a callable returning the seconds remaining before
        the ticket's deadline, bounding every dispatch wait; ``mqo`` is
        the service's :class:`~repro.service.mqo.MQOCoordinator` so the
        executor's cache misses share work with other in-flight queries.
        """
        return MixedQueryExecutor(
            self.sources, self.glue, options=options, max_workers=max_workers,
            cache=instance.cache if cache else None,
            statistics=instance.statistics(), cancel_check=cancel_check,
            dispatch_pool=dispatch_pool, task_pool=task_pool, metrics=metrics,
            deadline=deadline, mqo=mqo)

    def execute(self, instance: "MixedInstance", query, *,
                options: PlannerOptions | None = None, distinct: bool = True,
                limit: int | None = None, max_workers: int = 4,
                cache: bool = True):
        """Evaluate one CMQ against the pinned snapshots (serial-friendly)."""
        if isinstance(query, str):
            query = instance.parse(query)
        executor = self.executor(instance, options=options,
                                 max_workers=max_workers, cache=cache)
        return executor.execute(query, distinct=distinct, limit=limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PinnedCatalog(versions={self.versions})"


def pin_instance(instance: "MixedInstance") -> PinnedCatalog:
    """Pin every source of ``instance`` at its current version.

    Each pin is atomic per store (snapshot under the store's lock); the
    vector as a whole is the sequence of versions current at pin time.
    Source registration is expected to have finished before concurrent
    serving starts — the registry itself is not versioned.
    """
    glue = instance.glue_source.pin()
    sources = {uri: instance.source(uri).pin() for uri in instance.source_uris()}
    versions: dict[str, Optional[int]] = {GLUE_SOURCE: glue.version()}
    for uri, source in sources.items():
        versions[uri] = source.version()
    return PinnedCatalog(sources=sources, glue=glue, versions=versions)
