"""JSON document model: tree patterns as a first-class CMQ source.

This example reproduces the paper's tweet query over *native* JSON
documents (Figure 2 shape) instead of the flattened full-text index:

1. query the JSON store directly with a tree pattern,
2. run a three-model mixed query — RDF glue + JSON tree pattern + SQL —
   joining head-of-state tweets with INSEE unemployment statistics,
3. use the textual CMQ syntax with a *free* document-source variable
   (``[dTweets]``), letting the mediator discover which source answers.

Run with:  PYTHONPATH=src python examples/json_tree_patterns.py
"""

from __future__ import annotations

from repro.datasets import (
    DemoConfig,
    TWEETS_JSON_URI,
    build_demo_instance,
    qsia_json_query,
)
from repro.json import TreePatternMatcher, parse_pattern


def main() -> None:
    demo = build_demo_instance(DemoConfig(politicians=20, weeks=4, seed=42))
    instance = demo.instance

    # -- 1. tree patterns straight on the document store -------------------
    store = instance.source(TWEETS_JSON_URI).store
    pattern = parse_pattern(
        '{ user.screen_name: ?id, entities.hashtags: "sia2016", '
        "retweet_count: ?rt >= 100, text: ?t }"
    )
    print("tree pattern:", pattern.to_text())
    matcher = TreePatternMatcher(store)
    print(f"store: {len(store)} documents; "
          f"candidates after index pruning: {len(matcher.candidates(pattern))}")
    for row in matcher.match(pattern):
        print(f"  @{row['id']} ({row['rt']} RT): {row['t'][:60]}...")

    # -- 2. the three-model mixed query -------------------------------------
    query = qsia_json_query(demo)
    print("\nmixed query:", query)
    plan = instance.plan(query)
    print(plan.explain())
    result = instance.execute(query)
    print(f"{len(result)} answers; sample:")
    for row in result.rows[:3]:
        print(f"  dept {row['dept']} rate {row['rate']}: {row['t'][:50]}...")

    # -- 3. textual syntax with a free document-source variable -------------
    text = 'qTag(t, id, dTweets) :- qG(id), tweetJson(t, id, "sia2016")[dTweets]'
    print("\ntextual CMQ:", text)
    discovered = instance.execute(text)
    sources = sorted(set(discovered.column("dTweets")))
    print(f"{len(discovered)} answers, discovered source(s): {sources}")


if __name__ == "__main__":
    main()
