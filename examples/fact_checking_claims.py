"""Demonstration scenario 1: factual sources for claims made on Twitter.

The CMQ chains four sub-queries (paper §1 & §3, scenario 1):

1. glue graph: the head of state's Twitter account and birth department,
2. tweet store: his tweets mentioning the topic (the *claims*),
3. INSEE ``open_datasets`` registry: which source/table holds the official
   statistics for that topic — this is *dynamic source discovery*: the
   source URI of the next sub-query is found in the data,
4. the discovered relational source: the unemployment rates for the
   relevant department.

Run with:  python examples/fact_checking_claims.py
"""

from __future__ import annotations

from repro.analytics import rank_influential
from repro.datasets import DemoConfig, build_demo_instance, fact_checking_query


def main() -> None:
    demo = build_demo_instance(DemoConfig(politicians=40, weeks=4))
    instance = demo.instance
    head = demo.head_of_state()
    print(f"fact-checking claims by {head.name} (@{head.twitter_account}), "
          f"birth department {head.birth_department}")
    print()

    query = fact_checking_query(demo, topic_keyword="chomage")
    print("CMQ:", query)
    print()
    plan = instance.plan(query)
    print(plan.explain())
    print()

    result = instance.execute(query)
    print(f"{len(result)} (claim, statistic) pairs:")
    print(result.to_table(max_rows=10))
    print()
    print(result.trace.summary())
    print()

    # Which claims were the most visible?  (retweet-ranked, scenario 2 style)
    tweets = demo.instance.source("solr://tweets").store
    hits = tweets.search("text:chomage", limit=None)
    records = [{"text": h.get("text"), "author": h.get("user.screen_name"),
                "group": h.get("group", ""), "retweet_count": h.get("retweet_count", 0),
                "favorite_count": h.get("favorite_count", 0)} for h in hits]
    print("most influential claims on the topic:")
    for tweet in rank_influential(records, top=3):
        print(f"  [{tweet.retweets} RT] @{tweet.author}: {tweet.text[:80]}")


if __name__ == "__main__":
    main()
