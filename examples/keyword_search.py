"""Keyword-based querying over the mixed instance (paper §2.2).

Shows the full digest pipeline:

1. build the digest of every source (schema graphs / dataguides / RDF
   summaries + Bloom-filter & histogram value sets),
2. probe value sets across sources to discover join-candidate edges,
3. look keywords up in the digests, connect the hits with shortest join
   paths, generate candidate CMQs, and evaluate the best one.

Run with:  python examples/keyword_search.py
"""

from __future__ import annotations

from repro.datasets import DemoConfig, build_demo_instance
from repro.digest import KeywordQueryEngine


def main() -> None:
    demo = build_demo_instance(DemoConfig(politicians=40, weeks=4))
    instance = demo.instance

    catalog = instance.build_digests(bloom_bits_per_value=16, histogram_buckets=16)
    print("digest catalog:")
    for uri, digest in sorted(catalog.digests.items()):
        print(f"  {uri:<18} {len(digest.nodes):>3} positions, "
              f"{len(digest.edges):>4} intra-source edges, "
              f"{digest.size_in_bytes() / 1024:.1f} KiB of value summaries")
    print(f"  cross-source join candidates discovered: {len(catalog.join_edges)}")
    print()

    engine = KeywordQueryEngine(instance, catalog=catalog)
    for keywords in (["head of state", "SIA2016"],
                     ["Gironde", "unemployment"],
                     ["ecologists", "urgence"]):
        print(f"== keywords: {keywords}")
        outcome = engine.search(keywords, max_queries=3)
        for candidate in outcome.candidates:
            print("  candidate:", candidate.describe())
        if outcome.best is not None and outcome.result is not None:
            print(f"  -> best candidate returns {len(outcome.result)} answer(s)")
            print("     " + outcome.result.to_table(max_rows=3).replace("\n", "\n     "))
        print()


if __name__ == "__main__":
    main()
