"""Scenario qSIA (paper §2.2): head-of-state tweets about #SIA2016.

Uses the full synthetic demonstration instance (glue graph + tweets +
Facebook posts + INSEE + elections + DBPedia + IGN) and shows:

* the evaluation plan chosen by the planner (selective glue sub-query
  first, bind join into the Solr-like source),
* the answers,
* the same query with a *free source variable* ``[d]``, which fans out to
  every source accepting the sub-query (paper: "otherwise it is evaluated
  on every data source of the mixed instance that accepts it").

Run with:  python examples/sia2016_heads_of_state.py
"""

from __future__ import annotations

from repro.datasets import DemoConfig, build_demo_instance, qsia_query


def main() -> None:
    demo = build_demo_instance(DemoConfig(politicians=40, weeks=4))
    instance = demo.instance
    print("mixed instance:", instance.size_summary())
    print()

    query = qsia_query(demo, hashtag="SIA2016")
    plan = instance.plan(query)
    print(plan.explain())
    print()

    result = instance.execute(query)
    print(f"{len(result)} answer(s):")
    print(result.to_table())
    print()
    print(result.trace.summary())
    print()

    # Dynamic variant: the source is a free variable, so the sub-query is
    # shipped to every full-text source of the instance (tweets AND facebook).
    dynamic = instance.parse('qSIA(t, id) :- qG(id), tweetContains(t, id, "sia2016")[dSolr]')
    dynamic_result = instance.execute(dynamic)
    targets = {call.source_uri for call in dynamic_result.trace.calls
               if call.atom == "tweetContains"}
    print("free source variable dispatched to:", sorted(targets))
    print(f"{len(dynamic_result)} answer(s) via dynamic dispatch")


if __name__ == "__main__":
    main()
