"""Figure 3 reproduction: weekly PMI tag clouds on the state of emergency.

Pipeline (paper §3, scenario 2 + Figure 3):

1. a mixed query joins the glue graph (political group of each author)
   with the Solr-like tweet store (tweets mentioning the topic),
2. per week and per group, terms are ranked by exponentiated PMI,
3. one tag cloud per week is rendered (text to stdout, SVG to
   ``examples/output/``), coloured by political group.

Run with:  python examples/state_of_emergency_tagclouds.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analytics import (
    PMIVocabularyAnalyzer,
    top_terms_table,
    vocabulary_drift,
    weekly_tag_clouds,
)
from repro.datasets import DemoConfig, build_demo_instance, party_vocabulary_query


def main() -> None:
    demo = build_demo_instance(DemoConfig(politicians=60, weeks=4,
                                          tweets_per_politician_per_week=4.0))
    instance = demo.instance

    query = party_vocabulary_query(demo, "urgence")
    result = instance.execute(query, limit=None)
    print(f"mixed query returned {len(result)} (group, tweet) pairs")
    print()

    analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=3)
    weekly = analyzer.analyze_weekly(
        (row["week"], row["group"], row["t"]) for row in result.rows
    )

    clouds = weekly_tag_clouds(weekly, terms_per_group=6)
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    for cloud in clouds:
        print(cloud.to_text(k=20, columns=4))
        print()
        svg_path = output_dir / f"tagcloud_{cloud.title}.svg"
        svg_path.write_text(cloud.to_svg(), encoding="utf-8")
        print(f"   (SVG written to {svg_path})")
        print()

    # The per-week per-group top PMI terms, as a table (the data behind Fig. 3).
    last_week = sorted(weekly)[-1]
    print(f"top PMI terms per group, week {last_week}:")
    print(top_terms_table(weekly[last_week], k=6))
    print()

    # Quantify the discourse drift the paper narrates (factual -> institutional
    # -> objections -> vigilance).
    print("week-over-week vocabulary drift (Jaccard of top-8 terms, lower = more change):")
    for drift in vocabulary_drift(weekly, top_k=8):
        print(f"  {drift.group:<14} {drift.week_from} -> {drift.week_to}: "
              f"jaccard={drift.jaccard:.2f}  new={', '.join(drift.new_terms[:4])}")


if __name__ == "__main__":
    main()
