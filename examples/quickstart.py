"""Quickstart: build a tiny mixed instance by hand and run a mixed query.

This is the smallest end-to-end TATOOINE-style workflow:

1. create the custom RDF "glue" graph describing two politicians,
2. register a Solr-like tweet store and an INSEE-like SQL database,
3. run the paper's qSIA query ("tweets from heads of state about #SIA2016"),
   written both programmatically and in the textual CMQ syntax,
4. run a keyword query and look at the CMQ the engine generated.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CMQBuilder, MixedInstance
from repro.fulltext import tweet_store
from repro.rdf import Graph, triple
from repro.relational import Database


def build_glue_graph() -> Graph:
    """The hand-curated RDF bridging the sources (paper §1)."""
    graph = Graph("glue")
    graph.add(triple("ttn:POL01140", "rdf:type", "ttn:politician"))
    graph.add(triple("ttn:POL01140", "ttn:position", "ttn:headOfState"))
    graph.add(triple("ttn:POL01140", "foaf:name", "François Hollande"))
    graph.add(triple("ttn:POL01140", "ttn:twitterAccount", "fhollande"))
    graph.add(triple("ttn:POL02000", "rdf:type", "ttn:politician"))
    graph.add(triple("ttn:POL02000", "ttn:position", "ttn:partyLeader"))
    graph.add(triple("ttn:POL02000", "foaf:name", "Marine LePen"))
    graph.add(triple("ttn:POL02000", "ttn:twitterAccount", "mlepen"))
    return graph


def build_tweets():
    """A Solr-like store holding three tweets (Figure 2 shape)."""
    store = tweet_store()
    store.add_all([
        {"id": 464244242167342513,
         "created_at": "2016-03-01T03:42:31",
         "text": "Je suis là aujourd'hui pour montrer qu'il y a une solidarité "
                 "nationale. En défendant l'agriculture ... #SIA2016",
         "user": {"id": 483794260, "name": "François Hollande",
                  "screen_name": "fhollande", "followers_count": 1502835},
         "retweet_count": 469, "favorite_count": 883,
         "entities": {"hashtags": ["SIA2016"], "urls": []}},
        {"id": 2, "created_at": "2016-03-01T10:00:00",
         "text": "Au salon de l'agriculture pour soutenir nos éleveurs #SIA2016",
         "user": {"id": 99, "name": "Marine LePen", "screen_name": "mlepen",
                  "followers_count": 900000},
         "retweet_count": 310, "favorite_count": 540,
         "entities": {"hashtags": ["SIA2016"], "urls": []}},
        {"id": 3, "created_at": "2015-11-20T09:00:00",
         "text": "L'état d'urgence sera prolongé par le parlement",
         "user": {"id": 483794260, "name": "François Hollande",
                  "screen_name": "fhollande", "followers_count": 1502835},
         "retweet_count": 120, "favorite_count": 210,
         "entities": {"hashtags": ["EtatDurgence"], "urls": []}},
    ])
    return store


def build_insee() -> Database:
    """A minimal INSEE-like relational source."""
    db = Database("insee")
    db.execute("CREATE TABLE departments (code TEXT PRIMARY KEY, name TEXT, population INTEGER)")
    db.execute("INSERT INTO departments (code, name, population) VALUES "
               "('75', 'Paris', 2165423), ('33', 'Gironde', 1601845)")
    return db


def main() -> None:
    instance = MixedInstance(graph=build_glue_graph(), name="quickstart")
    instance.register_fulltext("solr://tweets", build_tweets())
    instance.register_relational("sql://insee", build_insee())

    # --- 1. the paper's qSIA query, built programmatically --------------------
    qsia = (CMQBuilder("qSIA", head=["t", "id"])
            .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id }")
            .fulltext("tweetContains", source="solr://tweets",
                      query="entities.hashtags:sia2016",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())
    print("== qSIA:", qsia)
    result = instance.execute(qsia)
    print(result.to_table())
    print()
    print(result.trace.plan_text)
    print()

    # --- 2. the same query in the textual CMQ syntax ---------------------------
    instance.templates.register_graph_bgp(
        "qG",
        "SELECT ?id WHERE { ?x ttn:position ttn:headOfState . ?x ttn:twitterAccount ?id }",
        parameters=("id",))
    instance.templates.register_fulltext(
        "tweetContains", query="entities.hashtags:{tag}",
        fields={"t": "text", "id": "user.screen_name"},
        parameters=("t", "id", "tag"), default_source="solr://tweets")
    parsed = instance.parse('qSIA(t, id) :- qG(id), tweetContains(t, id, "sia2016")[solr://tweets]')
    print("== textual CMQ gives the same answers:",
          instance.execute(parsed).rows == result.rows)
    print()

    # --- 3. keyword querying over the digests ---------------------------------
    outcome = instance.keyword_query(["head of state", "SIA2016"])
    print("== keyword query 'head of state' + 'SIA2016'")
    print(outcome.summary())
    if outcome.result is not None:
        print(outcome.result.to_table())


if __name__ == "__main__":
    main()
