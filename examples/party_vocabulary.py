"""Demonstration scenario 2: compare party vocabulary and influential tweets.

For a user-defined topic word, a mixed query retrieves every tweet
mentioning it together with the author's political group (joined through
the glue graph); the vocabulary of each group is then ranked by
exponentiated PMI and the most influential tweets per group are listed.

Run with:  python examples/party_vocabulary.py [topic_word]
"""

from __future__ import annotations

import sys

from repro.analytics import PMIVocabularyAnalyzer, build_tag_cloud, per_group_influential
from repro.datasets import DemoConfig, build_demo_instance, party_vocabulary_query


def main(topic_word: str = "agriculture") -> None:
    demo = build_demo_instance(DemoConfig(politicians=60, weeks=4,
                                          tweets_per_politician_per_week=3.0))
    instance = demo.instance

    query = party_vocabulary_query(demo, topic_word)
    result = instance.execute(query, limit=None)
    print(f"topic {topic_word!r}: {len(result)} tweets across "
          f"{len(set(result.column('group')))} political groups")
    print()

    analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=3)
    vocabularies = analyzer.analyze((row["group"], row["t"]) for row in result.rows)
    for group in sorted(vocabularies):
        top = ", ".join(f"{t.term} ({t.pmi:.1f})" for t in vocabularies[group].top(6))
        print(f"  {group:<14} {top}")
    print()

    cloud = build_tag_cloud(vocabularies, title=f"vocabulary on '{topic_word}'")
    print(cloud.to_text(k=24, columns=4))
    print()

    records = [{"text": r["t"], "author": r["id"], "group": r["group"],
                "retweet_count": r["rt"]} for r in result.rows]
    print("most influential tweets per group:")
    for group, tweets in sorted(per_group_influential(records, top_per_group=2).items()):
        for tweet in tweets:
            print(f"  {group:<14} [{tweet.retweets} RT] @{tweet.author}: {tweet.text[:70]}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "agriculture")
