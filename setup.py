"""Setuptools entry point (kept for legacy editable installs without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TATOOINE reproduction: mixed-instance querying, a lightweight "
        "integration architecture for data journalism (VLDB 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
